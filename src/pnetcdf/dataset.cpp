#include "pnetcdf/dataset.hpp"

#include <algorithm>
#include <cstring>
#include <limits>

#include "format/commit.hpp"
#include "format/commit_pfs.hpp"
#include "format/sums.hpp"
#include "iostat/events.hpp"
#include "iostat/iostat.hpp"
#include "iostat/pattern.hpp"
#include "iostat/timeline.hpp"
#include "util/crc32.hpp"

namespace pnetcdf {

using ncformat::Attr;
using ncformat::Header;
using ncformat::NcType;

struct Dataset::Impl {
  Impl(simmpi::Comm c, pfs::FileSystem* filesystem, mpiio::File f,
       std::string p, bool w, simmpi::Info i)
      : comm(std::move(c)), fs(filesystem), file(std::move(f)),
        path(std::move(p)), writable(w), info(std::move(i)) {}

  simmpi::Comm comm;
  pfs::FileSystem* fs;
  mpiio::File file;
  std::string path;
  bool writable;
  simmpi::Info info;

  Header header;
  bool defining = false;
  bool fresh = false;
  bool indep = false;  ///< independent data mode active
  std::optional<Header> pre_redef;
  std::uint64_t header_align = 0;  ///< nc_header_align_size hint

  // Crash consistency (§4.2.1 pattern: the root performs the metadata I/O).
  // `journaled` is agreed on all ranks so the collective syncs that order
  // data before metadata stay aligned; the journal handle and committed
  // state live on rank 0 only. Absent for legacy files opened without a
  // journal — those keep the pre-journal in-place update behaviour.
  bool journaled = false;
  std::optional<ncformat::PfsCommitIo> journal;
  std::optional<ncformat::CommitState> commit;

  // Sticky degradation under an armed rank-fault schedule: once any
  // collective on this dataset observed a peer death, further data-mode
  // calls refuse with kRankFailed and Close skips the collective numrecs
  // commit (the journal keeps the last committed header legal). Survivors
  // shrink the communicator (Comm::AgreeFT + LiveSubsetFT) and reopen.
  bool rank_failed = false;

  // Data integrity (format/sums.hpp). Mirrors the journal: the sidecar
  // handle and committed state live on rank 0, `sums_on` is agreed on all
  // ranks, and every rank holds an identical committed map plus its own
  // dirty set. Verification is attached only for read-only opens: in a
  // writable parallel session a peer's write invalidates chunks this rank
  // cannot see, so inline verification would flag fresh peer data as
  // corrupt. Writable sessions maintain the map only; scrub and later
  // read-only opens get the protection. Disabled under an armed rank-fault
  // schedule (the flush gather is not fault tolerant) — the sidecar then
  // stays session-open, i.e. untrusted, never wrong.
  bool sums_on = false;
  ncformat::ChunkSumMap sums;
  std::optional<ncformat::PfsCommitIo> sums_io;  ///< rank 0 only
  ncformat::SumsState sums_state;                ///< rank 0 only
  bool data_corrupt = false;  ///< sticky: a read surfaced kDataCorrupt

  pnc::Status SetupOpenSums(bool open_writable, bool root_torn);
  pnc::Status FlushSums(bool closing);
};

namespace {

std::vector<std::byte> EncodeHeader(const Header& h) {
  std::vector<std::byte> bytes;
  h.Encode(bytes);
  return bytes;
}

// ---------------------------------------------- rank-fault tolerance
// Taken only when a rank-fault schedule is armed on the communicator: the
// raw collectives (bcast/barrier/allreduce) abort on contact with a dead
// peer, while the agreement protocol completes on the survivors and turns
// the death into an agreed kRankFailed.

constexpr std::int64_t kI64Max = std::numeric_limits<std::int64_t>::max();

/// User-tag window for the FT header broadcast, disjoint from the mpiio
/// two-phase exchange tags (which live under 1 << 24).
constexpr int kFtHeaderTag = 1 << 25;

/// One fault-tolerant agreement round folding the minimum of `v` over the
/// live ranks. A detected death marks the dataset degraded.
pnc::Status FtAgreeMin(Dataset::Impl& im, std::int64_t v, std::int64_t* out) {
  if (im.comm.SelfDead())
    return pnc::Status(pnc::Err::kRankFailed, "this rank crashed");
  const simmpi::AgreeOutcome o = im.comm.AgreeFT(v);
  if (out) *out = o.min_value;
  if (o.any_dead) {
    im.rank_failed = true;
    return pnc::Status(pnc::Err::kRankFailed, "a peer rank crashed");
  }
  return pnc::Status::Ok();
}

pnc::Status FtBarrier(Dataset::Impl& im) { return FtAgreeMin(im, 0, nullptr); }

/// Root-broadcast substitute for scalars: peers contribute the +inf
/// sentinel, so the min-fold delivers the root's value verbatim.
pnc::Status FtRootValue(Dataset::Impl& im, std::int64_t root_v,
                        std::int64_t* out) {
  return FtAgreeMin(im, im.comm.rank() == 0 ? root_v : kI64Max, out);
}

/// Max-fold via the negated min-fold.
pnc::Status FtAgreeMax(Dataset::Impl& im, std::int64_t v, std::int64_t* out) {
  std::int64_t neg = 0;
  const pnc::Status st = FtAgreeMin(im, -v, &neg);
  if (out) *out = -neg;
  return st;
}

/// Root-broadcast of a byte buffer: plain sends from the root (a send to a
/// dead destination is dropped, never blocks), fault-tolerant receives
/// elsewhere, then an agreement so a mid-broadcast root death surfaces as
/// kRankFailed on every survivor instead of an abort.
pnc::Status FtBcastBytes(Dataset::Impl& im, std::vector<std::byte>& bytes) {
  std::int64_t ok = 1;
  if (im.comm.rank() == 0) {
    for (int r = 1; r < im.comm.size(); ++r)
      im.comm.Send(r, kFtHeaderTag,
                   pnc::ConstByteSpan(bytes.data(), bytes.size()));
  } else if (!im.comm.RecvFT(0, kFtHeaderTag, bytes)) {
    ok = 0;
  }
  std::int64_t all_ok = 0;
  PNC_RETURN_IF_ERROR(FtAgreeMin(im, ok, &all_ok));
  if (all_ok == 0) {
    im.rank_failed = true;
    return pnc::Status(pnc::Err::kRankFailed, "root died mid-broadcast");
  }
  return pnc::Status::Ok();
}

/// 64-bit FNV-1a over a header image, for agreeing on definition-phase
/// results without shipping the bytes. Shifted into the non-negative range
/// so the min/max agreement folds never negate INT64_MIN.
std::int64_t HashBytes(const std::vector<std::byte>& b) {
  std::uint64_t h = 1469598103934665603ULL;
  for (const std::byte c : b) {
    h ^= static_cast<std::uint64_t>(c);
    h *= 1099511628211ULL;
  }
  return static_cast<std::int64_t>(h >> 1);
}

/// Sticky degradation for statuses coming back from the mpiio layer's own
/// failure agreement (two-phase, Sync, SetView...).
pnc::Status Track(Dataset::Impl& im, pnc::Status st) {
  if (st.code() == pnc::Err::kRankFailed) im.rank_failed = true;
  if (st.code() == pnc::Err::kDataCorrupt) im.data_corrupt = true;
  return st;
}

/// First byte of the data region: the lowest variable begin offset.
/// 0 when no variables exist (the file has no data region yet).
std::uint64_t DataBeginOf(const Header& h) {
  std::uint64_t db = 0;
  bool first = true;
  for (const auto& v : h.vars) {
    if (first || v.begin < db) db = v.begin;
    first = false;
  }
  return first ? 0 : db;
}

}  // namespace

/// Arm the integrity subsystem at Open. The root loads (or creates, when
/// writable) the sidecar, decides trust, marks a writable session open
/// *before* any data write can land, and broadcasts the committed table so
/// every rank starts from the identical map. An empty table broadcast means
/// the subsystem stays off (read-only with nothing trustworthy, or a torn
/// primary whose in-memory repair does not match the on-disk bytes).
pnc::Status Dataset::Impl::SetupOpenSums(bool open_writable, bool root_torn) {
  if (!ncformat::SumsEnabled() || comm.FaultsArmed()) return pnc::Status::Ok();
  int err = 0;
  int verify = 0;
  std::vector<std::byte> table;
  if (comm.rank() == 0) {
    const std::string spath = ncformat::SumsPath(path);
    const bool existed = fs->Exists(spath);
    do {
      if (root_torn) break;
      if (!existed && !open_writable) break;
      auto sf =
          existed ? fs->Open(spath) : fs->Create(spath, /*exclusive=*/false);
      if (!sf.ok()) {
        err = sf.status().raw();
        break;
      }
      sf.value().SetTenant(file.tenant());
      sums_io.emplace(std::move(sf).value(), &comm.clock());
      if (!existed) {
        const pnc::Status fst = ncformat::FormatSums(*sums_io);
        if (!fst.ok()) {
          err = fst.raw();
          break;
        }
      }
      auto loaded = ncformat::LoadSums(*sums_io);
      if (!loaded.ok()) {
        err = loaded.status().raw();
        break;
      }
      sums_state = loaded.value().state;
      const std::uint64_t db = DataBeginOf(header);
      // A sidecar whose recorded geometry disagrees with the live header is
      // discarded rather than risking false corruption verdicts.
      const bool trusted =
          loaded.value().trusted && loaded.value().map.data_begin() == db;
      if (trusted) {
        sums = std::move(loaded.value().map);
      } else {
        sums.Clear();
        sums.SetGeometry(ncformat::SumChunkSize(), db);
      }
      if (open_writable) {
        err = ncformat::CommitSums(*sums_io, sums, /*open=*/true, &sums_state)
                  .raw();
        if (err != 0) break;
      } else if (!trusted) {
        sums_io.reset();
        break;
      }
      verify = !open_writable && trusted ? 1 : 0;
      table = sums.EncodeTable();
    } while (false);
  }
  comm.BcastValue(err, 0);
  if (err != 0)
    return pnc::Status(static_cast<pnc::Err>(err), "sum sidecar open");
  comm.Bcast(table, 0);
  if (table.empty()) return pnc::Status::Ok();
  if (comm.rank() != 0) {
    auto m = ncformat::ChunkSumMap::DecodeTable(table);
    if (!m.ok()) return m.status();
    sums = std::move(m).value();
  }
  comm.BcastValue(verify, 0);
  sums_on = true;
  file.AttachSums(&sums, verify != 0);
  return pnc::Status::Ok();
}

/// Root-committed sum flush. The data is already durable (callers sync
/// first). The per-rank dirty sets are allgathered and unioned; each rank
/// re-reads and checksums a round-robin stripe of the union (the recompute
/// work is distributed instead of serializing on the root, though the
/// reads take rank-ordered turns for virtual-time determinism — see the
/// loop comment); the root merges the gathered entries and commits the table
/// (still session-open unless closing), and the result is broadcast so
/// every rank resumes from the identical committed map.
pnc::Status Dataset::Impl::FlushSums(bool closing) {
  if (!sums_on || !writable) return pnc::Status::Ok();
  std::vector<std::byte> local(sums.dirty().size() * 8);
  std::size_t i = 0;
  for (const std::uint64_t c : sums.dirty()) {
    std::memcpy(local.data() + i * 8, &c, 8);
    ++i;
  }
  auto all = comm.Allgather(pnc::ConstByteSpan(local.data(), local.size()));
  std::set<std::uint64_t> dirty;
  for (const auto& blob : all) {
    for (std::size_t k = 0; k + 8 <= blob.size(); k += 8) {
      std::uint64_t c = 0;
      std::memcpy(&c, blob.data() + k, 8);
      dirty.insert(c);
    }
  }
  file.ClearView();
  pnc::Status rst = pnc::Status::Ok();
  std::vector<std::byte> entries;
  if (sums.chunk_size() != 0 && !dirty.empty()) {
    const std::uint64_t fsize =
        file.GetSize().ok() ? file.GetSize().value() : 0;
    const std::uint64_t csize = sums.chunk_size();
    // This rank's contiguous slice of the sorted union; runs of adjacent
    // chunks are fetched in one large read (capped at 64 chunks) so the
    // recompute I/O looks like the striped data I/O, not 64 KiB nibbles.
    const std::vector<std::uint64_t> du(dirty.begin(), dirty.end());
    const std::size_t P = static_cast<std::size_t>(comm.size());
    const std::size_t r = static_cast<std::size_t>(comm.rank());
    const std::size_t lo = du.size() * r / P;
    const std::size_t hi = du.size() * (r + 1) / P;
    std::vector<std::byte> buf;
    // Rank-ordered turns: the recompute reads are distributed across ranks
    // but must not hit the pfs server queues concurrently — ServeRequest
    // updates server_next_free_ in real-time arrival order, so racing
    // ranks would make the virtual makespan depend on thread scheduling
    // (the same reason the smoke suite pins cb_nodes=1).
    for (int turn = 0; turn < comm.size(); ++turn) {
      if (turn == comm.rank()) {
        std::size_t k = lo;
        while (k < hi && rst.ok()) {
          std::size_t e = k + 1;
          while (e < hi && e - k < 64 && du[e] == du[e - 1] + 1) ++e;
          const std::uint64_t rstart = sums.ChunkStart(du[k]);
          if (rstart >= fsize) break;  // du sorted: the rest is past EOF too
          const std::uint64_t rlen =
              std::min<std::uint64_t>((du[e - 1] - du[k] + 1) * csize,
                                      fsize - rstart);
          buf.resize(rlen);
          rst = file.ReadAt(rstart, buf.data(), rlen, simmpi::ByteType());
          if (!rst.ok()) break;
          for (std::size_t j = k; j < e; ++j) {
            const std::uint64_t off = (du[j] - du[k]) * csize;
            if (off >= rlen) break;
            const std::uint64_t clen =
                std::min<std::uint64_t>(csize, rlen - off);
            const std::uint32_t len32 = static_cast<std::uint32_t>(clen);
            const std::uint32_t crc =
                pnc::Crc32(pnc::ConstByteSpan(buf.data() + off, clen));
            const std::size_t at = entries.size();
            entries.resize(at + 16);
            std::memcpy(entries.data() + at, &du[j], 8);
            std::memcpy(entries.data() + at + 8, &len32, 4);
            std::memcpy(entries.data() + at + 12, &crc, 4);
          }
          k = e;
        }
      }
      comm.Barrier();
    }
  }
  auto gathered =
      comm.Gather(pnc::ConstByteSpan(entries.data(), entries.size()), 0);
  int err = comm.AllreduceMin(rst.raw());
  if (comm.rank() == 0 && err == 0) {
    pnc::Status st = pnc::Status::Ok();
    for (const auto& blob : gathered) {
      for (std::size_t k = 0; k + 16 <= blob.size(); k += 16) {
        std::uint64_t c = 0;
        std::uint32_t len32 = 0, crc = 0;
        std::memcpy(&c, blob.data() + k, 8);
        std::memcpy(&len32, blob.data() + k + 8, 4);
        std::memcpy(&crc, blob.data() + k + 12, 4);
        sums.Set(c, ncformat::ChunkSum{len32, crc});
      }
    }
    if (sums_io)
      st = ncformat::CommitSums(*sums_io, sums, /*open=*/!closing,
                                &sums_state);
    err = st.raw();
  }
  comm.BcastValue(err, 0);
  if (err != 0)
    return pnc::Status(static_cast<pnc::Err>(err), "sum flush failed");
  std::vector<std::byte> table;
  if (comm.rank() == 0) table = sums.EncodeTable();
  comm.Bcast(table, 0);
  if (comm.rank() != 0 && !table.empty()) {
    auto m = ncformat::ChunkSumMap::DecodeTable(table);
    if (!m.ok()) return m.status();
    sums = std::move(m).value();
  }
  sums.ClearDirty();
  comm.Barrier();
  return pnc::Status::Ok();
}

// ------------------------------------------------------------- lifecycle

pnc::Result<Dataset> Dataset::Create(simmpi::Comm comm, pfs::FileSystem& fs,
                                     const std::string& path,
                                     const simmpi::Info& info,
                                     const CreateOptions& opts) {
  unsigned mode = mpiio::kCreate | mpiio::kRdWr;
  if (!opts.clobber) mode |= mpiio::kExcl;
  auto f = mpiio::File::Open(comm, fs, path, mode, info);
  if (!f.ok()) return f.status();

  Dataset ds;
  ds.impl_ = std::make_shared<Impl>(std::move(comm), &fs, std::move(f).value(),
                                    path, /*writable=*/true, info);
  auto& im = *ds.impl_;
  im.header.version = opts.use_cdf2 ? 2 : 1;
  im.defining = true;
  im.fresh = true;
  // PnetCDF-level hint: align the start of the data section, leaving space
  // for the header to grow without relocating data (§4.2.2: PnetCDF hints
  // are interpreted by the library, the rest pass through to MPI-IO).
  im.header_align =
      static_cast<std::uint64_t>(im.info.GetInt("nc_header_align_size", 0));
  // Create-and-format the sidecar commit journal on the root (truncating any
  // stale one left by a previous file at this path so its commits can never
  // be replayed); the result is agreed before anyone proceeds.
  int jerr = 0;
  if (im.comm.rank() == 0) {
    auto jf = fs.Create(ncformat::JournalPath(path), /*exclusive=*/false);
    if (!jf.ok()) {
      jerr = jf.status().raw();
    } else {
      // Sidecar I/O bills to the dataset's tenant, like the primary file.
      pfs::File jfile = std::move(jf).value();
      jfile.SetTenant(im.file.tenant());
      im.journal.emplace(std::move(jfile), &im.comm.clock());
      jerr = ncformat::FormatJournal(*im.journal).raw();
    }
  }
  if (im.comm.FaultsArmed()) {
    std::int64_t agreed = 0;
    PNC_RETURN_IF_ERROR(FtRootValue(im, jerr, &agreed));
    jerr = static_cast<int>(agreed);
  } else {
    im.comm.BcastValue(jerr, 0);
  }
  if (jerr != 0)
    return pnc::Status(static_cast<pnc::Err>(jerr), "commit journal create");
  im.journaled = true;
  // Same for the chunk-sum sidecar: the root formats it (wiping any stale
  // table) and all ranks attach maintain-only. Geometry comes at EndDef;
  // nothing is committed before then, so a crash leaves it untrusted.
  if (ncformat::SumsEnabled() && !im.comm.FaultsArmed()) {
    int serr = 0;
    if (im.comm.rank() == 0) {
      auto sf = fs.Create(ncformat::SumsPath(path), /*exclusive=*/false);
      if (!sf.ok()) {
        serr = sf.status().raw();
      } else {
        pfs::File sfile = std::move(sf).value();
        sfile.SetTenant(im.file.tenant());
        im.sums_io.emplace(std::move(sfile), &im.comm.clock());
        serr = ncformat::FormatSums(*im.sums_io).raw();
      }
    }
    im.comm.BcastValue(serr, 0);
    if (serr != 0)
      return pnc::Status(static_cast<pnc::Err>(serr), "sum sidecar create");
    im.sums_on = true;
    im.file.AttachSums(&im.sums, /*verify=*/false);
  }
  if (im.comm.FaultsArmed()) {
    PNC_RETURN_IF_ERROR(FtBarrier(im));
  } else {
    im.comm.Barrier();
  }
  return ds;
}

pnc::Result<Dataset> Dataset::Open(simmpi::Comm comm, pfs::FileSystem& fs,
                                   const std::string& path, bool writable,
                                   const simmpi::Info& info) {
  unsigned mode = writable ? mpiio::kRdWr : mpiio::kRdOnly;
  auto f = mpiio::File::Open(comm, fs, path, mode, info);
  if (!f.ok()) return f.status();

  Dataset ds;
  ds.impl_ = std::make_shared<Impl>(std::move(comm), &fs, std::move(f).value(),
                                    path, writable, info);
  auto& im = *ds.impl_;

  // Crash recovery before anything trusts the on-disk header: the root
  // checks the sidecar journal and, when the primary does not match the
  // committed state, rolls it back/forward (in place when writable; in
  // memory only for a read-only open). §4.2.1 pattern: the root performs
  // the metadata work, then the agreed outcome is broadcast.
  int err = 0;
  std::vector<std::byte> bytes;
  int journaled = 0;
  std::vector<std::byte> recovered;  ///< committed header image, if torn
  if (im.comm.rank() == 0 && fs.Exists(ncformat::JournalPath(path))) {
    journaled = 1;
    pnc::Status rst = pnc::Status::Ok();
    auto jf = fs.Open(ncformat::JournalPath(path));
    auto pf = fs.Open(path);
    if (!jf.ok()) {
      rst = jf.status();
    } else if (!pf.ok()) {
      rst = pf.status();
    } else {
      pfs::File jfile = std::move(jf).value();
      jfile.SetTenant(im.file.tenant());
      pfs::File pfile = std::move(pf).value();
      pfile.SetTenant(im.file.tenant());
      im.journal.emplace(std::move(jfile), &im.comm.clock());
      ncformat::PfsCommitIo primary(std::move(pfile), &im.comm.clock());
      auto rep = ncformat::AnalyzeCommit(*im.journal, primary);
      if (!rep.ok()) {
        rst = rep.status();
      } else {
        const ncformat::VerifyReport& r = rep.value();
        if (r.has_commit) im.commit = r.committed;
        if (r.state == ncformat::FileState::kCorrupt && r.has_commit) {
          rst = pnc::Status(pnc::Err::kNotNc, "unrecoverable: " + r.detail);
        } else if (r.state == ncformat::FileState::kTornRecoverable) {
          if (writable) {
            rst = ncformat::RepairFromReport(r, primary);
          } else {
            recovered = r.committed_header;
          }
        }
      }
    }
    err = rst.raw();
  }
  if (im.comm.FaultsArmed()) {
    std::int64_t v = 0;
    PNC_RETURN_IF_ERROR(FtRootValue(im, err, &v));
    err = static_cast<int>(v);
    if (err != 0) return pnc::Status(static_cast<pnc::Err>(err), path);
    PNC_RETURN_IF_ERROR(FtRootValue(im, journaled, &v));
    journaled = static_cast<int>(v);
  } else {
    im.comm.BcastValue(err, 0);
    if (err != 0) return pnc::Status(static_cast<pnc::Err>(err), path);
    im.comm.BcastValue(journaled, 0);
  }
  im.journaled = journaled != 0;

  // §4.2.1: the root process fetches the file header and broadcasts it; all
  // processes then hold an identical local copy until close.
  if (im.comm.rank() == 0 && !recovered.empty()) {
    auto hdr = Header::Decode(recovered);
    if (hdr.ok()) {
      im.header = std::move(hdr).value();
      bytes = EncodeHeader(im.header);
    } else {
      err = hdr.status().raw();
    }
  } else if (im.comm.rank() == 0) {
    const std::uint64_t fsize = im.file.GetSize().ok()
                                    ? im.file.GetSize().value()
                                    : 0;
    std::uint64_t try_size = 8 * 1024;
    for (;;) {
      const std::uint64_t n = std::min(try_size, std::max<std::uint64_t>(fsize, 4));
      bytes.assign(n, std::byte{0});
      pnc::Status rs =
          im.file.ReadAt(0, bytes.data(), n, simmpi::ByteType());
      PNC_IOSTAT_ADD(kNcHeaderBytesRead, n);
      if (!rs.ok()) {
        err = rs.raw();
        break;
      }
      auto hdr = Header::Decode(bytes);
      if (hdr.ok()) {
        im.header = std::move(hdr).value();
        bytes = EncodeHeader(im.header);
        break;
      }
      if (hdr.status().code() != pnc::Err::kTrunc || n >= fsize) {
        err = hdr.status().raw();
        break;
      }
      try_size *= 4;
    }
  }
  if (im.comm.FaultsArmed()) {
    std::int64_t v = 0;
    PNC_RETURN_IF_ERROR(FtRootValue(im, err, &v));
    err = static_cast<int>(v);
    if (err != 0) return pnc::Status(static_cast<pnc::Err>(err), path);
    PNC_RETURN_IF_ERROR(FtBcastBytes(im, bytes));
  } else {
    im.comm.BcastValue(err, 0);
    if (err != 0) return pnc::Status(static_cast<pnc::Err>(err), path);
    im.comm.Bcast(bytes, 0);
  }
  if (im.comm.rank() != 0) {
    auto hdr = Header::Decode(bytes);
    if (!hdr.ok()) return hdr.status();
    im.header = std::move(hdr).value();
  }
  im.header_align =
      static_cast<std::uint64_t>(im.info.GetInt("nc_header_align_size", 0));
  PNC_RETURN_IF_ERROR(im.SetupOpenSums(writable, !recovered.empty()));
  return ds;
}

pnc::Status Dataset::Redef() {
  if (!impl_) return pnc::Status(pnc::Err::kBadId);
  auto& im = *impl_;
  if (im.defining) return pnc::Status(pnc::Err::kInDefine);
  if (!im.writable) return pnc::Status(pnc::Err::kPermission);
  if (im.indep) return pnc::Status(pnc::Err::kInIndep);
  im.pre_redef = im.header;
  im.defining = true;
  PNC_IOSTAT_ADD(kNcModeSwitches, 1);
  PNC_IOSTAT_TIMELINE_MARK(kModeSwitches, im.comm.clock().now(), 1);
  if (im.comm.FaultsArmed()) return FtBarrier(im);
  im.comm.Barrier();
  return pnc::Status::Ok();
}

pnc::Status Dataset::WriteHeaderCollective() {
  auto& im = *impl_;
  PNC_IOSTAT_REQ_SCOPE("write_header", "", im.comm.clock().now(),
                       std::uint64_t{0}, 1);
  auto bytes = EncodeHeader(im.header);
  im.file.ClearView();
  // Data first, metadata last: every rank's outstanding data lands before
  // the header that makes it reachable commits. The collective sync also
  // upholds the journal invariant that the primary from the previous commit
  // is durable before its shadow is overwritten.
  if (im.journaled) PNC_RETURN_IF_ERROR(Track(im, im.file.Sync()));
  // Rank 0 writes; its status is broadcast so every rank returns the same
  // result (and nobody blocks in a barrier a failed root never reaches).
  int err = 0;
  if (im.comm.rank() == 0) {
    pnc::Status st;
    if (im.journal) {
      // Journal commit (shadow, sync, slot, sync), then the primary in
      // place, then a local sync so the primary is durable before the next
      // commit may reuse the shadow.
      ncformat::CommitState next;
      st = ncformat::CommitHeaderToJournal(*im.journal, bytes,
                                           im.header.numrecs, im.commit,
                                           &next);
      if (st.ok())
        st = im.file.WriteAt(0, bytes.data(), bytes.size(),
                             simmpi::ByteType());
      if (st.ok()) st = im.file.SyncLocal();
      if (st.ok()) im.commit = next;
    } else {
      st = im.file.WriteAt(0, bytes.data(), bytes.size(), simmpi::ByteType());
    }
    if (st.ok()) PNC_IOSTAT_ADD(kNcHeaderBytesWritten, bytes.size());
    err = st.raw();
  }
  if (im.comm.FaultsArmed()) {
    std::int64_t v = 0;
    PNC_RETURN_IF_ERROR(FtRootValue(im, err, &v));
    err = static_cast<int>(v);
    if (err != 0)
      return pnc::Status(static_cast<pnc::Err>(err), "header write failed");
    return FtBarrier(im);
  }
  im.comm.BcastValue(err, 0);
  if (err != 0)
    return pnc::Status(static_cast<pnc::Err>(err), "header write failed");
  im.comm.Barrier();
  return pnc::Status::Ok();
}

pnc::Status Dataset::EndDef() {
  if (!impl_) return pnc::Status(pnc::Err::kBadId);
  auto& im = *impl_;
  if (!im.defining) return pnc::Status(pnc::Err::kNotInDefine);

  // Keep the data section where it is if the new header still fits in front
  // of it; also honor the header alignment hint.
  std::uint64_t min_begin = im.header_align;
  if (im.pre_redef) {
    const std::uint64_t new_size = im.header.EncodedSize();
    if (new_size <= im.pre_redef->data_begin())
      min_begin = std::max(min_begin, im.pre_redef->data_begin());
  }
  pnc::Status lst = im.header.ComputeLayout(min_begin);
  PNC_RETURN_IF_ERROR(CollectiveCheck(lst, true));

  // §4.2.1: all define mode functions are collective and require identical
  // arguments on every process; verify before committing anything to disk.
  auto bytes = EncodeHeader(im.header);
  if (im.comm.FaultsArmed()) {
    // Agree on the image's hash instead of shipping it: identical headers
    // iff the min and max of the hash coincide across the live ranks.
    const std::int64_t h = HashBytes(bytes);
    std::int64_t mn = 0, mx = 0;
    PNC_RETURN_IF_ERROR(FtAgreeMin(im, h, &mn));
    PNC_RETURN_IF_ERROR(FtAgreeMax(im, h, &mx));
    if (mn != mx)
      return pnc::Status(pnc::Err::kMultiDefine, "EndDef header mismatch");
  } else if (!im.comm.AllAgree(bytes)) {
    return pnc::Status(pnc::Err::kMultiDefine, "EndDef header mismatch");
  }

  // Sum geometry follows the (possibly moved) data region; set it before
  // the relayout below so its writes mark chunks dirty in the new geometry.
  // When the region moved, every committed sum is stale: the root marks all
  // existing data dirty so the next flush re-sums it.
  if (im.sums_on) {
    const std::uint64_t db = DataBeginOf(im.header);
    if (im.sums.chunk_size() == 0 || im.sums.data_begin() != db) {
      const std::uint64_t cs = im.sums.chunk_size() != 0
                                   ? im.sums.chunk_size()
                                   : ncformat::SumChunkSize();
      im.sums.Clear();
      im.sums.SetGeometry(cs, db);
      if (!im.fresh && im.comm.rank() == 0) {
        const std::uint64_t fsize =
            im.file.GetSize().ok() ? im.file.GetSize().value() : 0;
        if (fsize > db) im.sums.MarkDirtyRange(db, fsize - db);
      }
    }
  }
  if (im.pre_redef && !im.fresh) {
    PNC_RETURN_IF_ERROR(RelayoutParallel(*im.pre_redef));
  }
  PNC_RETURN_IF_ERROR(WriteHeaderCollective());
  im.defining = false;
  im.fresh = false;
  im.pre_redef.reset();
  PNC_IOSTAT_ADD(kNcModeSwitches, 1);
  PNC_IOSTAT_TIMELINE_MARK(kModeSwitches, im.comm.clock().now(), 1);
  return pnc::Status::Ok();
}

pnc::Status Dataset::Sync() {
  if (!impl_) return pnc::Status(pnc::Err::kBadId);
  auto& im = *impl_;
  if (im.defining) return pnc::Status(pnc::Err::kInDefine);
  if (im.rank_failed)
    return pnc::Status(pnc::Err::kRankFailed, "dataset degraded by a failure");
  PNC_RETURN_IF_ERROR(SyncNumrecs(im.header.numrecs, /*collective=*/true));
  PNC_RETURN_IF_ERROR(Track(im, im.file.Sync()));
  // Data durable first, then the sums describing it (still session-open).
  return im.FlushSums(/*closing=*/false);
}

pnc::Status Dataset::Close() {
  if (!impl_) return pnc::Status(pnc::Err::kBadId);
  auto& im = *impl_;
  if (im.rank_failed || im.comm.SelfDead()) {
    // A participant died: the group can no longer agree on a record count,
    // so skip the collective numrecs commit — the journal keeps the last
    // committed header legal — and release the handle. mpiio's close is
    // itself fault tolerant, so the survivors complete here together.
    (void)im.file.Close();
    if (im.comm.rank() == 0) PNC_IOSTAT_AUTO_REPORT();
    return pnc::Status(pnc::Err::kRankFailed, "closed after a rank failure");
  }
  if (im.defining) PNC_RETURN_IF_ERROR(EndDef());
  PNC_RETURN_IF_ERROR(SyncNumrecs(im.header.numrecs, /*collective=*/true));
  if (im.sums_on && im.writable) {
    // Final flush commits the table closed: only a session that reaches
    // this point hands trustworthy sums to the next open.
    PNC_RETURN_IF_ERROR(Track(im, im.file.Sync()));
    PNC_RETURN_IF_ERROR(im.FlushSums(/*closing=*/true));
  }
  pnc::Status st = Track(im, im.file.Close());
  // The collective close barrier has passed: every rank's counters are
  // final, so the reduction in the report is well defined.
  if (im.comm.rank() == 0) PNC_IOSTAT_AUTO_REPORT();
  // A sticky corrupt read is re-reported here so a caller that ignored the
  // data call's status cannot mistake the dataset for healthy.
  if (st.ok() && im.data_corrupt)
    st = pnc::Status(pnc::Err::kDataCorrupt,
                     "dataset read corrupt data this session");
  return st;
}

pnc::Status Dataset::Abort() {
  if (!impl_) return pnc::Status(pnc::Err::kBadId);
  auto& im = *impl_;
  if (im.defining && im.fresh) {
    PNC_RETURN_IF_ERROR(im.file.Close());
    int err = 0;
    if (im.comm.rank() == 0) {
      im.journal.reset();
      (void)im.fs->Remove(ncformat::JournalPath(im.path));
      if (im.sums_io) {
        im.sums_io.reset();
        (void)im.fs->Remove(ncformat::SumsPath(im.path));
      }
      err = im.fs->Remove(im.path).raw();
    }
    if (im.comm.FaultsArmed()) {
      std::int64_t v = 0;
      PNC_RETURN_IF_ERROR(FtRootValue(im, err, &v));
      err = static_cast<int>(v);
      if (err != 0) return pnc::Status(static_cast<pnc::Err>(err), im.path);
      return FtBarrier(im);
    }
    im.comm.BcastValue(err, 0);
    if (err != 0) return pnc::Status(static_cast<pnc::Err>(err), im.path);
    im.comm.Barrier();
    return pnc::Status::Ok();
  }
  if (im.defining && im.pre_redef) {
    im.header = *im.pre_redef;
    im.pre_redef.reset();
    im.defining = false;
  }
  return pnc::Status::Ok();
}

pnc::Status Dataset::BeginIndepData() {
  if (!impl_) return pnc::Status(pnc::Err::kBadId);
  auto& im = *impl_;
  if (im.defining) return pnc::Status(pnc::Err::kInDefine);
  if (im.indep) return pnc::Status(pnc::Err::kInIndep);
  if (im.comm.FaultsArmed()) {
    PNC_RETURN_IF_ERROR(FtBarrier(im));
  } else {
    im.comm.Barrier();
  }
  im.indep = true;
  PNC_IOSTAT_ADD(kNcModeSwitches, 1);
  PNC_IOSTAT_TIMELINE_MARK(kModeSwitches, im.comm.clock().now(), 1);
  return pnc::Status::Ok();
}

pnc::Status Dataset::EndIndepData() {
  if (!impl_) return pnc::Status(pnc::Err::kBadId);
  auto& im = *impl_;
  if (!im.indep) return pnc::Status(pnc::Err::kNotIndep);
  im.indep = false;
  PNC_IOSTAT_ADD(kNcModeSwitches, 1);
  PNC_IOSTAT_TIMELINE_MARK(kModeSwitches, im.comm.clock().now(), 1);
  // Record counts may have diverged across ranks during independent writes;
  // converge on the maximum and persist it.
  PNC_RETURN_IF_ERROR(SyncNumrecs(im.header.numrecs, /*collective=*/true));
  return pnc::Status::Ok();
}

// ----------------------------------------------------------- define mode
// Define mode functions keep the serial syntax and semantics (§4.1); they
// mutate only the local header copy. Cross-process argument consistency is
// verified wholesale at EndDef (AllAgree on the encoded header), which is
// where the library pays its one synchronization for the whole definition
// phase (§4.3).

namespace {
pnc::Status CheckDefine(const Dataset::Impl& im) {
  if (!im.defining) return pnc::Status(pnc::Err::kNotInDefine);
  if (!im.writable) return pnc::Status(pnc::Err::kPermission);
  return pnc::Status::Ok();
}
}  // namespace

pnc::Result<int> Dataset::DefDim(const std::string& name, std::uint64_t len) {
  if (!impl_) return pnc::Status(pnc::Err::kBadId);
  auto& im = *impl_;
  PNC_RETURN_IF_ERROR(CheckDefine(im));
  auto& h = im.header;
  if (h.FindDim(name) >= 0) return pnc::Status(pnc::Err::kNameInUse, name);
  if (len == kUnlimited && h.unlimited_dimid() >= 0)
    return pnc::Status(pnc::Err::kUnlimit, name);
  if (h.dims.size() >= ncformat::kMaxDims)
    return pnc::Status(pnc::Err::kMaxDims);
  h.dims.push_back({name, len});
  return static_cast<int>(h.dims.size()) - 1;
}

pnc::Result<int> Dataset::DefVar(const std::string& name, NcType type,
                                 std::vector<std::int32_t> dimids) {
  if (!impl_) return pnc::Status(pnc::Err::kBadId);
  auto& im = *impl_;
  PNC_RETURN_IF_ERROR(CheckDefine(im));
  auto& h = im.header;
  if (h.FindVar(name) >= 0) return pnc::Status(pnc::Err::kNameInUse, name);
  if (h.vars.size() >= ncformat::kMaxVars)
    return pnc::Status(pnc::Err::kMaxVars);
  if (!ncformat::IsValidType(static_cast<std::int32_t>(type)))
    return pnc::Status(pnc::Err::kBadType, name);
  ncformat::Var v;
  v.name = name;
  v.type = type;
  v.dimids = std::move(dimids);
  for (std::size_t i = 0; i < v.dimids.size(); ++i) {
    const auto d = v.dimids[i];
    if (d < 0 || static_cast<std::size_t>(d) >= h.dims.size())
      return pnc::Status(pnc::Err::kBadDim, name);
    if (h.dims[static_cast<std::size_t>(d)].is_unlimited() && i != 0)
      return pnc::Status(pnc::Err::kUnlimPos, name);
  }
  h.vars.push_back(std::move(v));
  return static_cast<int>(h.vars.size()) - 1;
}

pnc::Status Dataset::RenameDim(int dimid, const std::string& name) {
  if (!impl_) return pnc::Status(pnc::Err::kBadId);
  PNC_RETURN_IF_ERROR(CheckDefine(*impl_));
  auto& h = impl_->header;
  if (dimid < 0 || static_cast<std::size_t>(dimid) >= h.dims.size())
    return pnc::Status(pnc::Err::kBadDim);
  if (h.FindDim(name) >= 0) return pnc::Status(pnc::Err::kNameInUse, name);
  h.dims[static_cast<std::size_t>(dimid)].name = name;
  return pnc::Status::Ok();
}

pnc::Status Dataset::RenameVar(int varid, const std::string& name) {
  if (!impl_) return pnc::Status(pnc::Err::kBadId);
  PNC_RETURN_IF_ERROR(CheckDefine(*impl_));
  auto& h = impl_->header;
  if (varid < 0 || static_cast<std::size_t>(varid) >= h.vars.size())
    return pnc::Status(pnc::Err::kNotVar);
  if (h.FindVar(name) >= 0) return pnc::Status(pnc::Err::kNameInUse, name);
  h.vars[static_cast<std::size_t>(varid)].name = name;
  return pnc::Status::Ok();
}

// ------------------------------------------------------------ attributes

namespace {
pnc::Result<std::vector<Attr>*> AttrListOf(Header& h, int varid) {
  if (varid == kGlobal) return &h.gatts;
  if (varid < 0 || static_cast<std::size_t>(varid) >= h.vars.size())
    return pnc::Status(pnc::Err::kNotVar);
  return &h.vars[static_cast<std::size_t>(varid)].attrs;
}
}  // namespace

pnc::Status Dataset::PutAtt(int varid, Attr att) {
  if (!impl_) return pnc::Status(pnc::Err::kBadId);
  auto& im = *impl_;
  if (!im.writable) return pnc::Status(pnc::Err::kPermission);
  PNC_ASSIGN_OR_RETURN(std::vector<Attr>* attrs, AttrListOf(im.header, varid));
  int existing = -1;
  for (std::size_t i = 0; i < attrs->size(); ++i)
    if ((*attrs)[i].name == att.name) existing = static_cast<int>(i);
  if (!im.defining) {
    // Data mode: in-place replacement only; the change is collective and the
    // root rewrites the (same-size) header.
    if (existing < 0) return pnc::Status(pnc::Err::kNotInDefine, att.name);
    const auto& old = (*attrs)[static_cast<std::size_t>(existing)];
    if (att.type != old.type || att.data.size() > old.data.size())
      return pnc::Status(pnc::Err::kNotInDefine, att.name);
    (*attrs)[static_cast<std::size_t>(existing)] = std::move(att);
    return WriteHeaderCollective();
  }
  if (existing >= 0) {
    (*attrs)[static_cast<std::size_t>(existing)] = std::move(att);
  } else {
    if (attrs->size() >= ncformat::kMaxAttrs)
      return pnc::Status(pnc::Err::kMaxAtts);
    attrs->push_back(std::move(att));
  }
  return pnc::Status::Ok();
}

pnc::Status Dataset::PutAttText(int varid, const std::string& name,
                                std::string_view text) {
  return PutAtt(varid, Attr::Text(name, text));
}

pnc::Result<Attr> Dataset::GetAtt(int varid, const std::string& name) const {
  if (!impl_) return pnc::Status(pnc::Err::kBadId);
  PNC_ASSIGN_OR_RETURN(std::vector<Attr>* attrs,
                       AttrListOf(impl_->header, varid));
  for (const auto& a : *attrs)
    if (a.name == name) return a;
  return pnc::Status(pnc::Err::kNotAtt, name);
}

pnc::Status Dataset::DelAtt(int varid, const std::string& name) {
  if (!impl_) return pnc::Status(pnc::Err::kBadId);
  PNC_RETURN_IF_ERROR(CheckDefine(*impl_));
  PNC_ASSIGN_OR_RETURN(std::vector<Attr>* attrs,
                       AttrListOf(impl_->header, varid));
  auto it = std::find_if(attrs->begin(), attrs->end(),
                         [&](const Attr& a) { return a.name == name; });
  if (it == attrs->end()) return pnc::Status(pnc::Err::kNotAtt, name);
  attrs->erase(it);
  return pnc::Status::Ok();
}

// --------------------------------------------------------------- inquiry
// All inquiry works on the local header copy: "All header information can be
// accessed directly in local memory" (§4.3) — no communication here.

const Header& Dataset::header() const { return impl_->header; }
int Dataset::ndims() const { return static_cast<int>(impl_->header.dims.size()); }
int Dataset::nvars() const { return static_cast<int>(impl_->header.vars.size()); }
int Dataset::ngatts() const { return static_cast<int>(impl_->header.gatts.size()); }
int Dataset::unlimdim() const { return impl_->header.unlimited_dimid(); }
std::uint64_t Dataset::numrecs() const { return impl_->header.numrecs; }

pnc::Result<int> Dataset::DimId(const std::string& name) const {
  const int id = impl_->header.FindDim(name);
  if (id < 0) return pnc::Status(pnc::Err::kBadDim, name);
  return id;
}

pnc::Result<int> Dataset::VarId(const std::string& name) const {
  const int id = impl_->header.FindVar(name);
  if (id < 0) return pnc::Status(pnc::Err::kNotVar, name);
  return id;
}

simmpi::Comm& Dataset::comm() { return impl_->comm; }
const mpiio::Hints& Dataset::hints() const { return impl_->file.hints(); }

// ------------------------------------------------------------- data mode

pnc::Status Dataset::CheckDataMode(bool need_write, bool collective) const {
  if (!impl_) return pnc::Status(pnc::Err::kBadId);
  const auto& im = *impl_;
  if (im.rank_failed)
    return pnc::Status(pnc::Err::kRankFailed, "dataset degraded by a failure");
  if (im.defining) return pnc::Status(pnc::Err::kInDefine);
  if (need_write && !im.writable) return pnc::Status(pnc::Err::kPermission);
  if (collective && im.indep) return pnc::Status(pnc::Err::kInIndep);
  if (!collective && !im.indep) return pnc::Status(pnc::Err::kNotIndep);
  return pnc::Status::Ok();
}

pnc::Status Dataset::CollectiveCheck(pnc::Status st, bool collective) {
  if (!collective) return st;
  auto& im = *impl_;
  if (im.comm.FaultsArmed()) {
    std::int64_t mn = 0;
    PNC_RETURN_IF_ERROR(FtAgreeMin(im, st.raw(), &mn));
    if (mn == 0) return pnc::Status::Ok();
    return st.ok() ? pnc::Status(pnc::Err::kMultiDefine,
                                 "a peer process failed validation")
                   : st;
  }
  const bool all_ok = im.comm.AllreduceAnd(st.ok());
  if (all_ok) return pnc::Status::Ok();
  return st.ok() ? pnc::Status(pnc::Err::kMultiDefine,
                               "a peer process failed validation")
                 : st;
}

pnc::Status Dataset::MoveExternal(int varid,
                                  std::span<const std::uint64_t> start,
                                  std::span<const std::uint64_t> count,
                                  std::span<const std::uint64_t> stride,
                                  pnc::ByteSpan ext, bool is_write,
                                  bool collective) {
  auto& im = *impl_;

  // Mint the causal request ID here — the typed/flexible API funnel — so
  // every lower-layer event (two-phase phases, pfs server service, faults,
  // retries, the numrecs sync below) attributes to "api:variable".
  const char* api =
      is_write
          ? (collective ? (stride.empty() ? "put_vara_all" : "put_vars_all")
                        : (stride.empty() ? "put_vara" : "put_vars"))
          : (collective ? (stride.empty() ? "get_vara_all" : "get_vars_all")
                        : (stride.empty() ? "get_vara" : "get_vars"));
  const std::string_view varname =
      varid >= 0 && varid < static_cast<int>(im.header.vars.size())
          ? std::string_view(im.header.vars[static_cast<std::size_t>(varid)]
                                 .name)
          : std::string_view();
  PNC_IOSTAT_REQ_SCOPE(api, varname, im.comm.clock().now(), ext.size(),
                       is_write);

  // §4.2.2: represent the access pattern as an MPI file view constructed
  // from the variable metadata and the start/count/stride arguments. The
  // regions come out sorted, so the hindexed filetype is monotonic as MPI
  // requires.
  std::vector<pnc::Extent> regions;
  ncformat::AccessRegions(im.header, varid, start, count, stride, regions);
  std::vector<std::uint64_t> lens, offs;
  lens.reserve(regions.size());
  offs.reserve(regions.size());
  for (const auto& r : regions) {
    offs.push_back(r.offset);
    lens.push_back(r.len);
  }
  // Pattern profiler: this call's flattened extents, tagged per variable.
  // Same virtual timestamps as the req scope above — recording never
  // advances clocks.
  PNC_IOSTAT_PATTERN_ACCESS(varname, is_write, collective, offs, lens);
  auto filetype = simmpi::Datatype::Hindexed(lens, offs, simmpi::ByteType());

  PNC_IOSTAT_ADD(kNcDataCalls, 1);
  if (is_write)
    PNC_IOSTAT_ADD(kNcDataBytesWritten, ext.size());
  else
    PNC_IOSTAT_ADD(kNcDataBytesRead, ext.size());

  pnc::Status io;
  if (collective) {
    PNC_RETURN_IF_ERROR(Track(im, im.file.SetView(0, simmpi::ByteType(),
                                                  filetype)));
    io = is_write ? im.file.WriteAtAll(0, ext.data(), ext.size(),
                                       simmpi::ByteType())
                  : im.file.ReadAtAll(0, ext.data(), ext.size(),
                                      simmpi::ByteType());
  } else {
    PNC_RETURN_IF_ERROR(im.file.SetViewLocal(0, simmpi::ByteType(), filetype));
    io = is_write
             ? im.file.WriteAt(0, ext.data(), ext.size(), simmpi::ByteType())
             : im.file.ReadAt(0, ext.data(), ext.size(), simmpi::ByteType());
  }
  im.file.ClearView();
  PNC_RETURN_IF_ERROR(Track(im, io));

  // Record growth: converge numrecs across ranks for collective access;
  // independent writers converge later (EndIndepData / Sync / Close). Every
  // rank of a collective takes this path even with a zero-sized count, so
  // the embedded allreduce stays aligned.
  if (is_write && im.header.IsRecordVar(varid)) {
    std::uint64_t last = 0;
    if (!count.empty() && count[0] > 0) {
      const std::uint64_t st0 = stride.empty() ? 1 : stride[0];
      last = start[0] + (count[0] - 1) * st0 + 1;
    }
    PNC_RETURN_IF_ERROR(
        SyncNumrecs(std::max(im.header.numrecs, last), collective));
  }
  return pnc::Status::Ok();
}

pnc::Status Dataset::SyncNumrecs(std::uint64_t local_numrecs, bool collective) {
  auto& im = *impl_;
  if (!collective) {
    im.header.numrecs = std::max(im.header.numrecs, local_numrecs);
    return pnc::Status::Ok();
  }
  const bool ft = im.comm.FaultsArmed();
  std::uint64_t global;
  bool changed;
  if (ft) {
    std::int64_t g = 0;
    PNC_RETURN_IF_ERROR(
        FtAgreeMax(im, static_cast<std::int64_t>(local_numrecs), &g));
    global = static_cast<std::uint64_t>(g);
    std::int64_t ch = 0;
    PNC_RETURN_IF_ERROR(
        FtAgreeMax(im, global != im.header.numrecs ? 1 : 0, &ch));
    changed = ch != 0;
  } else {
    global = im.comm.AllreduceMax(local_numrecs);
    // `changed` can differ across ranks (a rank that grew the records
    // locally already holds the new count), so agree on it before the
    // guarded collective section below.
    changed = im.comm.AllreduceMax<std::uint8_t>(
                  global != im.header.numrecs ? 1 : 0) != 0;
  }
  im.header.numrecs = global;
  if (changed && im.writable) {
    im.file.ClearView();
    // The record count grows only after the record data is durable on every
    // rank (all-old-or-all-new for a crash between data and count).
    if (im.journaled) PNC_RETURN_IF_ERROR(Track(im, im.file.Sync()));
    int err = 0;
    if (im.comm.rank() == 0) {
      std::byte buf[4];
      const auto v =
          pnc::xdr::ToBig(static_cast<std::uint32_t>(im.header.numrecs));
      std::memcpy(buf, &v, 4);
      pnc::Status st;
      if (im.journal && im.commit) {
        ncformat::CommitState next;
        st = ncformat::CommitNumrecsToJournal(*im.journal, *im.commit,
                                              im.header.numrecs, &next);
        if (st.ok()) st = im.file.WriteAt(4, buf, 4, simmpi::ByteType());
        if (st.ok()) st = im.file.SyncLocal();
        if (st.ok()) im.commit = next;
      } else {
        st = im.file.WriteAt(4, buf, 4, simmpi::ByteType());
      }
      if (st.ok()) PNC_IOSTAT_ADD(kNcHeaderBytesWritten, 4);
      err = st.raw();
    }
    // Agree on the root's status so all ranks return the same result and the
    // barrier below is reached by everyone or no one.
    if (ft) {
      std::int64_t v = 0;
      PNC_RETURN_IF_ERROR(FtRootValue(im, err, &v));
      err = static_cast<int>(v);
      if (err != 0)
        return pnc::Status(static_cast<pnc::Err>(err), "numrecs write failed");
      return FtBarrier(im);
    }
    im.comm.BcastValue(err, 0);
    if (err != 0)
      return pnc::Status(static_cast<pnc::Err>(err), "numrecs write failed");
    im.comm.Barrier();
  }
  return pnc::Status::Ok();
}

// --------------------------------------------------------------- flexible

pnc::Status Dataset::FlexPut(int varid, std::span<const std::uint64_t> start,
                             std::span<const std::uint64_t> count,
                             std::span<const std::uint64_t> stride,
                             const void* buf, std::uint64_t bufcount,
                             const simmpi::Datatype& buftype, bool collective) {
  PNC_RETURN_IF_ERROR(CheckDataMode(/*need_write=*/true, collective));
  const std::uint64_t nelems = ncformat::AccessElems(count);
  pnc::Status vst = pnc::Status::Ok();
  if (buftype.count_elems() * bufcount != nelems)
    vst = pnc::Status(pnc::Err::kTypeMismatch, "flexible put");
  PNC_RETURN_IF_ERROR(CollectiveCheck(vst, collective));

  // Pack the (possibly noncontiguous) user memory described by the MPI
  // datatype into element order, then hand off to the typed engine.
  const std::uint64_t bytes = bufcount * buftype.size();
  std::vector<std::byte> packed(bytes);
  buftype.Pack(static_cast<const std::byte*>(buf), bufcount, packed.data());
  impl_->comm.clock().Advance(impl_->comm.cost().CopyCost(bytes));

  switch (buftype.prim()) {
    case simmpi::Prim::kByte:
    case simmpi::Prim::kSChar:
      return TypedPut<signed char>(
          varid, start, count, stride, {},
          {reinterpret_cast<const signed char*>(packed.data()), nelems},
          collective);
    case simmpi::Prim::kChar:
      return TypedPut<char>(
          varid, start, count, stride, {},
          {reinterpret_cast<const char*>(packed.data()), nelems}, collective);
    case simmpi::Prim::kShort:
      return TypedPut<short>(
          varid, start, count, stride, {},
          {reinterpret_cast<const short*>(packed.data()), nelems}, collective);
    case simmpi::Prim::kInt:
      return TypedPut<int>(
          varid, start, count, stride, {},
          {reinterpret_cast<const int*>(packed.data()), nelems}, collective);
    case simmpi::Prim::kLongLong:
      return TypedPut<long long>(
          varid, start, count, stride, {},
          {reinterpret_cast<const long long*>(packed.data()), nelems},
          collective);
    case simmpi::Prim::kFloat:
      return TypedPut<float>(
          varid, start, count, stride, {},
          {reinterpret_cast<const float*>(packed.data()), nelems}, collective);
    case simmpi::Prim::kDouble:
      return TypedPut<double>(
          varid, start, count, stride, {},
          {reinterpret_cast<const double*>(packed.data()), nelems}, collective);
  }
  return pnc::Status(pnc::Err::kBadType);
}

pnc::Status Dataset::FlexGet(int varid, std::span<const std::uint64_t> start,
                             std::span<const std::uint64_t> count,
                             std::span<const std::uint64_t> stride, void* buf,
                             std::uint64_t bufcount,
                             const simmpi::Datatype& buftype, bool collective) {
  PNC_RETURN_IF_ERROR(CheckDataMode(/*need_write=*/false, collective));
  const std::uint64_t nelems = ncformat::AccessElems(count);
  pnc::Status vst = pnc::Status::Ok();
  if (buftype.count_elems() * bufcount != nelems)
    vst = pnc::Status(pnc::Err::kTypeMismatch, "flexible get");
  PNC_RETURN_IF_ERROR(CollectiveCheck(vst, collective));

  const std::uint64_t bytes = bufcount * buftype.size();
  std::vector<std::byte> packed(bytes);
  pnc::Status st;
  switch (buftype.prim()) {
    case simmpi::Prim::kByte:
    case simmpi::Prim::kSChar:
      st = TypedGet<signed char>(
          varid, start, count, stride, {},
          {reinterpret_cast<signed char*>(packed.data()), nelems}, collective);
      break;
    case simmpi::Prim::kChar:
      st = TypedGet<char>(varid, start, count, stride, {},
                          {reinterpret_cast<char*>(packed.data()), nelems},
                          collective);
      break;
    case simmpi::Prim::kShort:
      st = TypedGet<short>(varid, start, count, stride, {},
                           {reinterpret_cast<short*>(packed.data()), nelems},
                           collective);
      break;
    case simmpi::Prim::kInt:
      st = TypedGet<int>(varid, start, count, stride, {},
                         {reinterpret_cast<int*>(packed.data()), nelems},
                         collective);
      break;
    case simmpi::Prim::kLongLong:
      st = TypedGet<long long>(
          varid, start, count, stride, {},
          {reinterpret_cast<long long*>(packed.data()), nelems}, collective);
      break;
    case simmpi::Prim::kFloat:
      st = TypedGet<float>(varid, start, count, stride, {},
                           {reinterpret_cast<float*>(packed.data()), nelems},
                           collective);
      break;
    case simmpi::Prim::kDouble:
      st = TypedGet<double>(varid, start, count, stride, {},
                            {reinterpret_cast<double*>(packed.data()), nelems},
                            collective);
      break;
  }
  if (!st.ok() && st.code() != pnc::Err::kRange) return st;
  buftype.Unpack(packed.data(), bufcount, static_cast<std::byte*>(buf));
  impl_->comm.clock().Advance(impl_->comm.cost().CopyCost(bytes));
  return st;
}

// ---------------------------------------------------------- batch access

pnc::Status Dataset::BatchAccess(std::span<BatchItem> items, bool is_write) {
  PNC_RETURN_IF_ERROR(CheckDataMode(is_write, /*collective=*/true));
  auto& im = *impl_;
  auto& clk = im.comm.clock();
  PNC_IOSTAT_REQ_SCOPE(is_write ? "wait_all.put" : "wait_all.get", "*batch",
                       clk.now(), std::uint64_t{0}, is_write);

  // Flatten every item into (file extent, source pointer) pieces, then sort
  // by file offset: the combined access becomes one monotonic file view —
  // "more contiguous and larger transfers" out of many small requests.
  struct Piece {
    pnc::Extent ext;
    std::byte* data;
  };
  std::vector<Piece> pieces;
  std::uint64_t total = 0;
  pnc::Status vst = pnc::Status::Ok();
  std::uint64_t max_recs = im.header.numrecs;
  for (const auto& item : items) {
    pnc::Status st = ncformat::ValidateAccess(
        im.header, item.varid, item.start, item.count, {},
        is_write ? ncformat::AccessKind::kWrite : ncformat::AccessKind::kRead);
    if (!st.ok()) {
      vst = st;
      break;
    }
    std::vector<pnc::Extent> regions;
    ncformat::AccessRegions(im.header, item.varid, item.start, item.count, {},
                            regions);
    std::uint64_t pos = 0;
    for (const auto& r : regions) {
      pieces.push_back({r, item.ext.data() + pos});
      pos += r.len;
      total += r.len;
    }
    if (pos != item.ext.size()) {
      vst = pnc::Status(pnc::Err::kTypeMismatch, "batch item size");
      break;
    }
    if (is_write && im.header.IsRecordVar(item.varid) && !item.count.empty() &&
        item.count[0] > 0) {
      max_recs = std::max(max_recs, item.start[0] + item.count[0]);
    }
  }
  PNC_RETURN_IF_ERROR(CollectiveCheck(vst, true));

  std::stable_sort(pieces.begin(), pieces.end(),
                   [](const Piece& a, const Piece& b) {
                     return a.ext.offset < b.ext.offset;
                   });

  // Combined filetype + staging buffer in file order.
  std::vector<std::uint64_t> lens, offs;
  lens.reserve(pieces.size());
  offs.reserve(pieces.size());
  std::vector<std::byte> staging(total);
  std::uint64_t pos = 0;
  for (const auto& p : pieces) {
    offs.push_back(p.ext.offset);
    lens.push_back(p.ext.len);
    if (is_write) std::memcpy(staging.data() + pos, p.data, p.ext.len);
    pos += p.ext.len;
  }
  if (is_write && total > 0) clk.Advance(im.comm.cost().CopyCost(total));
  // Pattern profiler: the coalesced nonblocking batch as one access — the
  // merged extent list is exactly what wait_all hands the I/O engine.
  PNC_IOSTAT_PATTERN_ACCESS("*batch", is_write, true, offs, lens);
  auto filetype = simmpi::Datatype::Hindexed(lens, offs, simmpi::ByteType());

  PNC_IOSTAT_ADD(kNcDataCalls, 1);
  if (is_write)
    PNC_IOSTAT_ADD(kNcDataBytesWritten, total);
  else
    PNC_IOSTAT_ADD(kNcDataBytesRead, total);

  PNC_RETURN_IF_ERROR(Track(im, im.file.SetView(0, simmpi::ByteType(),
                                                filetype)));
  pnc::Status io =
      is_write ? im.file.WriteAtAll(0, staging.data(), staging.size(),
                                    simmpi::ByteType())
               : im.file.ReadAtAll(0, staging.data(), staging.size(),
                                   simmpi::ByteType());
  im.file.ClearView();
  PNC_RETURN_IF_ERROR(Track(im, io));

  if (!is_write) {
    pos = 0;
    for (const auto& p : pieces) {
      std::memcpy(p.data, staging.data() + pos, p.ext.len);
      pos += p.ext.len;
    }
    if (total > 0) clk.Advance(im.comm.cost().CopyCost(total));
  } else {
    PNC_RETURN_IF_ERROR(SyncNumrecs(max_recs, /*collective=*/true));
  }
  return pnc::Status::Ok();
}

// ------------------------------------------------------------- relayout

pnc::Status Dataset::RelayoutParallel(const Header& old_header) {
  auto& im = *impl_;
  const Header& nh = im.header;
  const int p = im.comm.size();
  const int r = im.comm.rank();

  struct Move {
    std::uint64_t from, to, len;
  };
  std::vector<Move> moves;
  const std::uint64_t nrecs = old_header.numrecs;
  for (std::size_t i = 0; i < old_header.vars.size(); ++i) {
    const auto& ov = old_header.vars[i];
    const int nid = nh.FindVar(ov.name);
    if (nid < 0) continue;
    const auto& nv = nh.vars[static_cast<std::size_t>(nid)];
    if (old_header.IsRecordVar(static_cast<int>(i))) {
      for (std::uint64_t rec = 0; rec < nrecs; ++rec)
        moves.push_back({ov.begin + rec * old_header.recsize(),
                         nv.begin + rec * nh.recsize(), ov.vsize});
    } else {
      moves.push_back({ov.begin, nv.begin, ov.vsize});
    }
  }
  // Destinations strictly grow, so moving the highest destination first is
  // clobber-free; within a chunk each rank moves a disjoint slice, and a
  // barrier between chunks orders cross-chunk dependences. This is the
  // "moving the existing data to the extended area is performed in parallel"
  // of §4.3.
  std::sort(moves.begin(), moves.end(),
            [](const Move& a, const Move& b) { return a.to > b.to; });

  im.file.ClearView();
  std::vector<std::byte> buf;
  for (const auto& m : moves) {
    // Each move ends in a status agreement (a collective, so it also orders
    // cross-chunk dependences the way the old barrier did). A rank-local
    // I/O failure therefore surfaces identically on all ranks instead of
    // leaving peers stuck in a barrier the failed rank never reaches.
    pnc::Status st;
    if (m.to != m.from && m.len != 0) {
      if (m.to < m.from) {
        st = pnc::Status(pnc::Err::kInternal, "relayout moved data backwards");
      } else {
        const std::uint64_t per = (m.len + static_cast<std::uint64_t>(p) - 1) /
                                  static_cast<std::uint64_t>(p);
        const std::uint64_t lo =
            std::min(m.len, per * static_cast<std::uint64_t>(r));
        const std::uint64_t hi = std::min(m.len, lo + per);
        if (hi > lo) {
          buf.resize(hi - lo);
          st = im.file.ReadAt(m.from + lo, buf.data(), hi - lo,
                              simmpi::ByteType());
          if (st.ok())
            st = im.file.WriteAt(m.to + lo, buf.data(), hi - lo,
                                 simmpi::ByteType());
        }
      }
    }
    int agreed;
    if (im.comm.FaultsArmed()) {
      std::int64_t mn = 0;
      PNC_RETURN_IF_ERROR(FtAgreeMin(im, st.raw(), &mn));
      agreed = static_cast<int>(mn);
    } else {
      agreed = im.comm.AllreduceMin(st.raw());
    }
    if (agreed != 0)
      return st.raw() == agreed
                 ? st
                 : pnc::Status(static_cast<pnc::Err>(agreed),
                               "relayout failed on a peer rank");
  }
  return pnc::Status::Ok();
}

}  // namespace pnetcdf

