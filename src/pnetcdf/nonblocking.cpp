#include "pnetcdf/nonblocking.hpp"

#include <algorithm>

#include "iostat/iostat.hpp"

namespace pnetcdf {

pnc::Status NonblockingQueue::WaitAll(std::vector<pnc::Status>* per_request) {
  PNC_IOSTAT_ADD(kNcReqsCoalesced, puts_.size() + gets_.size());
  // Collective on the dataset's communicator: every rank runs the combined
  // put phase and the combined get phase exactly once, pending or not.
  std::vector<Dataset::BatchItem> put_items;
  put_items.reserve(puts_.size());
  for (auto& r : puts_)
    put_items.push_back({r.varid, r.start, r.count, r.ext});
  const pnc::Status ws = ds_.BatchAccess(put_items, /*is_write=*/true);

  std::vector<Dataset::BatchItem> get_items;
  get_items.reserve(gets_.size());
  for (auto& r : gets_)
    get_items.push_back({r.varid, r.start, r.count, r.ext});
  const pnc::Status rs = ds_.BatchAccess(get_items, /*is_write=*/false);

  // Deliver reads (type conversion into the user buffers).
  std::vector<std::pair<RequestId, pnc::Status>> statuses;
  statuses.reserve(puts_.size() + gets_.size());
  for (const auto& r : puts_) statuses.emplace_back(r.id, ws);
  for (auto& r : gets_) {
    pnc::Status st = rs;
    if (st.ok() && r.deliver) st = r.deliver();
    statuses.emplace_back(r.id, st);
  }
  std::sort(statuses.begin(), statuses.end(),
            [](const auto& a, const auto& b) { return a.first < b.first; });
  if (per_request) {
    per_request->clear();
    for (auto& [id, st] : statuses) {
      (void)id;
      per_request->push_back(st);
    }
  }
  puts_.clear();
  gets_.clear();

  if (!ws.ok()) return ws;
  return rs;
}

}  // namespace pnetcdf
