// The nfmpi_* Fortran-flavor interface (paper §4: "prefixing ... the Fortran
// function calls with nfmpi_").
//
// What makes the Fortran binding more than a rename:
//  * indices are 1-based (start vectors count from 1, as in the real
//    nfmpi_put_vara_* functions);
//  * dimension orders are reversed: a Fortran caller declares A(nx, ny, nz)
//    column-major, which is the same memory as a C array [nz][ny][nx], so
//    every shape/start/count/stride vector is flipped before reaching the
//    common core — exactly what the production PnetCDF Fortran binding does;
//  * functions return the integer status (NF_NOERR == 0) and write results
//    through reference parameters.
//
// C++ host code can use this to port Fortran-structured applications (like
// the original FLASH I/O kernel) line by line.
#pragma once

#include "pnetcdf/ncmpi.hpp"

namespace pnetcdf::fapi {

using MPI_Offset = capi::MPI_Offset;

constexpr int NF_NOERR = 0;
constexpr int NF_BYTE = capi::NC_BYTE;
constexpr int NF_CHAR = capi::NC_CHAR;
constexpr int NF_SHORT = capi::NC_SHORT;
constexpr int NF_INT = capi::NC_INT;
constexpr int NF_FLOAT = capi::NC_FLOAT;
constexpr int NF_REAL = capi::NC_FLOAT;
constexpr int NF_DOUBLE = capi::NC_DOUBLE;
constexpr int NF_CLOBBER = capi::NC_CLOBBER;
constexpr int NF_NOCLOBBER = capi::NC_NOCLOBBER;
constexpr int NF_NOWRITE = capi::NC_NOWRITE;
constexpr int NF_WRITE = capi::NC_WRITE;
constexpr int NF_64BIT_OFFSET = capi::NC_64BIT_OFFSET;
constexpr MPI_Offset NF_UNLIMITED = capi::NC_UNLIMITED;
constexpr int NF_GLOBAL = capi::NC_GLOBAL;

// ---- dataset functions ----
int nfmpi_create(simmpi::Comm comm, pfs::FileSystem& fs, const char* path,
                 int cmode, const simmpi::Info& info, int& ncid);
int nfmpi_open(simmpi::Comm comm, pfs::FileSystem& fs, const char* path,
               int omode, const simmpi::Info& info, int& ncid);
int nfmpi_redef(int ncid);
int nfmpi_enddef(int ncid);
int nfmpi_sync(int ncid);
int nfmpi_close(int ncid);
int nfmpi_begin_indep_data(int ncid);
int nfmpi_end_indep_data(int ncid);

// ---- define mode ----
int nfmpi_def_dim(int ncid, const char* name, MPI_Offset len, int& dimid);
/// `dimids` in Fortran order: dimids(1) is the fastest-varying dimension;
/// the unlimited dimension, if used, is dimids(ndims).
int nfmpi_def_var(int ncid, const char* name, int xtype, int ndims,
                  const int* dimids, int& varid);

// ---- attributes (text + double shown; others via the C API) ----
int nfmpi_put_att_text(int ncid, int varid, const char* name, MPI_Offset len,
                       const char* text);
int nfmpi_get_att_text(int ncid, int varid, const char* name, char* text);

// ---- inquiry ----
int nfmpi_inq_varid(int ncid, const char* name, int& varid);
int nfmpi_inq_dimlen(int ncid, int dimid, MPI_Offset& len);

// ---- data access (1-based starts, Fortran-ordered vectors) ----
#define PNETCDF_FAPI_DECLARE(SUFFIX, CTYPE)                                   \
  int nfmpi_put_vara_##SUFFIX##_all(int ncid, int varid,                      \
                                    const MPI_Offset* start,                  \
                                    const MPI_Offset* count, const CTYPE* op);\
  int nfmpi_get_vara_##SUFFIX##_all(int ncid, int varid,                      \
                                    const MPI_Offset* start,                  \
                                    const MPI_Offset* count, CTYPE* ip);      \
  int nfmpi_put_vara_##SUFFIX(int ncid, int varid, const MPI_Offset* start,   \
                              const MPI_Offset* count, const CTYPE* op);      \
  int nfmpi_get_vara_##SUFFIX(int ncid, int varid, const MPI_Offset* start,   \
                              const MPI_Offset* count, CTYPE* ip);

PNETCDF_FAPI_DECLARE(text, char)
PNETCDF_FAPI_DECLARE(int, int)
PNETCDF_FAPI_DECLARE(real, float)
PNETCDF_FAPI_DECLARE(double, double)
#undef PNETCDF_FAPI_DECLARE

}  // namespace pnetcdf::fapi
