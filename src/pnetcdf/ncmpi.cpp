#include "pnetcdf/ncmpi.hpp"

#include <algorithm>
#include <cstring>
#include <map>
#include <memory>

#include "pnetcdf/nonblocking.hpp"

namespace pnetcdf::capi {

namespace {

// One handle table per rank thread — the analogue of per-process tables
// under real MPI.
thread_local std::map<int, Dataset> g_handles;
thread_local std::map<int, std::unique_ptr<NonblockingQueue>> g_queues;
thread_local int g_next_ncid = 0;

Dataset* Find(int ncid) {
  auto it = g_handles.find(ncid);
  return it == g_handles.end() ? nullptr : &it->second;
}

NonblockingQueue* Queue(int ncid) {
  auto* ds = Find(ncid);
  if (!ds) return nullptr;
  auto& q = g_queues[ncid];
  if (!q) q = std::make_unique<NonblockingQueue>(*ds);
  return q.get();
}

int Install(Dataset ds, int* ncidp) {
  const int id = g_next_ncid++;
  g_handles.emplace(id, std::move(ds));
  *ncidp = id;
  return NC_NOERR;
}

constexpr int kBadId = static_cast<int>(pnc::Err::kBadId);
constexpr int kNotVarErr = static_cast<int>(pnc::Err::kNotVar);
constexpr int kBadTypeErr = static_cast<int>(pnc::Err::kBadType);

std::vector<std::uint64_t> ToU64(const MPI_Offset* p, std::size_t n) {
  std::vector<std::uint64_t> v(n);
  for (std::size_t i = 0; i < n; ++i) v[i] = static_cast<std::uint64_t>(p[i]);
  return v;
}

pnc::Result<std::size_t> VarRank(Dataset* ds, int varid) {
  if (varid < 0 || varid >= ds->nvars()) return pnc::Status(pnc::Err::kNotVar);
  return ds->header().vars[static_cast<std::size_t>(varid)].dimids.size();
}

}  // namespace

const char* ncmpi_strerror(int err) {
  return pnc::StrError(static_cast<pnc::Err>(err)).data();
}

// ------------------------------------------------------------------ files

int ncmpi_create(simmpi::Comm comm, pfs::FileSystem& fs, const char* path,
                 int cmode, const simmpi::Info& info, int* ncidp) {
  CreateOptions opts;
  opts.clobber = (cmode & NC_NOCLOBBER) == 0;
  // Classic CDF-1 unless NC_64BIT_OFFSET requests the 64-bit-offset format,
  // matching the C library's default.
  opts.use_cdf2 = (cmode & NC_64BIT_OFFSET) != 0;
  auto r = Dataset::Create(std::move(comm), fs, path, info, opts);
  if (!r.ok()) return r.status().raw();
  return Install(std::move(r).value(), ncidp);
}

int ncmpi_open(simmpi::Comm comm, pfs::FileSystem& fs, const char* path,
               int omode, const simmpi::Info& info, int* ncidp) {
  auto r = Dataset::Open(std::move(comm), fs, path, (omode & NC_WRITE) != 0,
                         info);
  if (!r.ok()) return r.status().raw();
  return Install(std::move(r).value(), ncidp);
}

int ncmpi_redef(int ncid) {
  auto* ds = Find(ncid);
  return ds ? ds->Redef().raw() : kBadId;
}
int ncmpi_enddef(int ncid) {
  auto* ds = Find(ncid);
  return ds ? ds->EndDef().raw() : kBadId;
}
int ncmpi_sync(int ncid) {
  auto* ds = Find(ncid);
  return ds ? ds->Sync().raw() : kBadId;
}
int ncmpi_abort(int ncid) {
  auto* ds = Find(ncid);
  if (!ds) return kBadId;
  const int rc = ds->Abort().raw();
  g_queues.erase(ncid);
  g_handles.erase(ncid);
  return rc;
}
int ncmpi_close(int ncid) {
  auto* ds = Find(ncid);
  if (!ds) return kBadId;
  const int rc = ds->Close().raw();
  g_queues.erase(ncid);
  g_handles.erase(ncid);
  return rc;
}
int ncmpi_begin_indep_data(int ncid) {
  auto* ds = Find(ncid);
  return ds ? ds->BeginIndepData().raw() : kBadId;
}
int ncmpi_end_indep_data(int ncid) {
  auto* ds = Find(ncid);
  return ds ? ds->EndIndepData().raw() : kBadId;
}

// ------------------------------------------------------------ define mode

int ncmpi_def_dim(int ncid, const char* name, MPI_Offset len, int* idp) {
  auto* ds = Find(ncid);
  if (!ds) return kBadId;
  auto r = ds->DefDim(name, static_cast<std::uint64_t>(len));
  if (!r.ok()) return r.status().raw();
  if (idp) *idp = r.value();
  return NC_NOERR;
}

int ncmpi_def_var(int ncid, const char* name, int xtype, int ndims,
                  const int* dimids, int* varidp) {
  auto* ds = Find(ncid);
  if (!ds) return kBadId;
  if (!ncformat::IsValidType(xtype)) return kBadTypeErr;
  std::vector<std::int32_t> dims(dimids, dimids + ndims);
  auto r = ds->DefVar(name, static_cast<ncformat::NcType>(xtype),
                      std::move(dims));
  if (!r.ok()) return r.status().raw();
  if (varidp) *varidp = r.value();
  return NC_NOERR;
}

int ncmpi_rename_dim(int ncid, int dimid, const char* name) {
  auto* ds = Find(ncid);
  return ds ? ds->RenameDim(dimid, name).raw() : kBadId;
}
int ncmpi_rename_var(int ncid, int varid, const char* name) {
  auto* ds = Find(ncid);
  return ds ? ds->RenameVar(varid, name).raw() : kBadId;
}

// ------------------------------------------------------------- attributes

int ncmpi_put_att_text(int ncid, int varid, const char* name, MPI_Offset len,
                       const char* op) {
  auto* ds = Find(ncid);
  if (!ds) return kBadId;
  return ds->PutAttText(varid, name,
                        std::string_view(op, static_cast<std::size_t>(len)))
      .raw();
}

int ncmpi_get_att_text(int ncid, int varid, const char* name, char* ip) {
  auto* ds = Find(ncid);
  if (!ds) return kBadId;
  auto r = ds->GetAtt(varid, name);
  if (!r.ok()) return r.status().raw();
  if (r.value().type != ncformat::NcType::kChar) return kBadTypeErr;
  std::memcpy(ip, r.value().data.data(), r.value().data.size());
  return NC_NOERR;
}

namespace {

/// Build a numeric attribute of external type `xtype` from host values of
/// type T, converting (with netCDF range semantics) on the way.
template <typename T>
int PutNumericAttr(int ncid, int varid, const char* name, int xtype,
                   MPI_Offset len, const T* op) {
  auto* ds = Find(ncid);
  if (!ds) return kBadId;
  if (!ncformat::IsValidType(xtype) || xtype == NC_CHAR) return kBadTypeErr;
  const auto type = static_cast<ncformat::NcType>(xtype);
  const auto n = static_cast<std::size_t>(len);
  // Convert to the external representation, then back into the host-order
  // packed form the Attr model holds.
  std::vector<std::byte> wire(n * ncformat::TypeSize(type));
  pnc::Status conv =
      ncformat::ToExternal<T>(std::span<const T>(op, n), type, wire.data());
  if (!conv.ok() && conv.code() != pnc::Err::kRange) return conv.raw();
  ncformat::Attr a;
  a.name = name;
  a.type = type;
  a.data.resize(wire.size());
  switch (type) {
    case ncformat::NcType::kByte:
      std::memcpy(a.data.data(), wire.data(), wire.size());
      break;
    case ncformat::NcType::kShort:
      pnc::xdr::DecodeArray<std::int16_t>(
          wire.data(), {reinterpret_cast<std::int16_t*>(a.data.data()), n});
      break;
    case ncformat::NcType::kInt:
      pnc::xdr::DecodeArray<std::int32_t>(
          wire.data(), {reinterpret_cast<std::int32_t*>(a.data.data()), n});
      break;
    case ncformat::NcType::kFloat:
      pnc::xdr::DecodeArray<float>(
          wire.data(), {reinterpret_cast<float*>(a.data.data()), n});
      break;
    case ncformat::NcType::kDouble:
      pnc::xdr::DecodeArray<double>(
          wire.data(), {reinterpret_cast<double*>(a.data.data()), n});
      break;
    case ncformat::NcType::kChar:
      return kBadTypeErr;
  }
  pnc::Status st = ds->PutAtt(varid, std::move(a));
  if (!st.ok()) return st.raw();
  return conv.raw();
}

/// Read a numeric attribute of any external type as host values of type T.
template <typename T>
int GetNumericAttr(int ncid, int varid, const char* name, T* ip) {
  auto* ds = Find(ncid);
  if (!ds) return kBadId;
  auto r = ds->GetAtt(varid, name);
  if (!r.ok()) return r.status().raw();
  const auto& a = r.value();
  if (a.type == ncformat::NcType::kChar) return kBadTypeErr;
  const std::size_t n = a.nelems();
  std::vector<std::byte> wire(a.data.size());
  // Host-order packed -> external wire -> T (reusing the checked paths).
  switch (a.type) {
    case ncformat::NcType::kByte:
      std::memcpy(wire.data(), a.data.data(), a.data.size());
      break;
    case ncformat::NcType::kShort:
      pnc::xdr::EncodeArray<std::int16_t>(
          {reinterpret_cast<const std::int16_t*>(a.data.data()), n},
          wire.data());
      break;
    case ncformat::NcType::kInt:
      pnc::xdr::EncodeArray<std::int32_t>(
          {reinterpret_cast<const std::int32_t*>(a.data.data()), n},
          wire.data());
      break;
    case ncformat::NcType::kFloat:
      pnc::xdr::EncodeArray<float>(
          {reinterpret_cast<const float*>(a.data.data()), n}, wire.data());
      break;
    case ncformat::NcType::kDouble:
      pnc::xdr::EncodeArray<double>(
          {reinterpret_cast<const double*>(a.data.data()), n}, wire.data());
      break;
    case ncformat::NcType::kChar:
      return kBadTypeErr;
  }
  return ncformat::FromExternal<T>(wire.data(), a.type, std::span<T>(ip, n))
      .raw();
}

}  // namespace

int ncmpi_put_att_double(int ncid, int varid, const char* name, int xtype,
                         MPI_Offset len, const double* op) {
  return PutNumericAttr<double>(ncid, varid, name, xtype, len, op);
}
int ncmpi_get_att_double(int ncid, int varid, const char* name, double* ip) {
  return GetNumericAttr<double>(ncid, varid, name, ip);
}
int ncmpi_put_att_int(int ncid, int varid, const char* name, int xtype,
                      MPI_Offset len, const int* op) {
  return PutNumericAttr<int>(ncid, varid, name, xtype, len, op);
}
int ncmpi_get_att_int(int ncid, int varid, const char* name, int* ip) {
  return GetNumericAttr<int>(ncid, varid, name, ip);
}

int ncmpi_inq_att(int ncid, int varid, const char* name, int* xtypep,
                  MPI_Offset* lenp) {
  auto* ds = Find(ncid);
  if (!ds) return kBadId;
  auto r = ds->GetAtt(varid, name);
  if (!r.ok()) return r.status().raw();
  if (xtypep) *xtypep = static_cast<int>(r.value().type);
  if (lenp) *lenp = static_cast<MPI_Offset>(r.value().nelems());
  return NC_NOERR;
}

int ncmpi_del_att(int ncid, int varid, const char* name) {
  auto* ds = Find(ncid);
  return ds ? ds->DelAtt(varid, name).raw() : kBadId;
}

// ---------------------------------------------------------------- inquiry

int ncmpi_inq(int ncid, int* ndimsp, int* nvarsp, int* ngattsp,
              int* unlimdimidp) {
  auto* ds = Find(ncid);
  if (!ds) return kBadId;
  if (ndimsp) *ndimsp = ds->ndims();
  if (nvarsp) *nvarsp = ds->nvars();
  if (ngattsp) *ngattsp = ds->ngatts();
  if (unlimdimidp) *unlimdimidp = ds->unlimdim();
  return NC_NOERR;
}
int ncmpi_inq_ndims(int ncid, int* ndimsp) {
  return ncmpi_inq(ncid, ndimsp, nullptr, nullptr, nullptr);
}
int ncmpi_inq_nvars(int ncid, int* nvarsp) {
  return ncmpi_inq(ncid, nullptr, nvarsp, nullptr, nullptr);
}
int ncmpi_inq_unlimdim(int ncid, int* unlimdimidp) {
  return ncmpi_inq(ncid, nullptr, nullptr, nullptr, unlimdimidp);
}

int ncmpi_inq_dimid(int ncid, const char* name, int* idp) {
  auto* ds = Find(ncid);
  if (!ds) return kBadId;
  auto r = ds->DimId(name);
  if (!r.ok()) return r.status().raw();
  if (idp) *idp = r.value();
  return NC_NOERR;
}

int ncmpi_inq_dim(int ncid, int dimid, char* name, MPI_Offset* lenp) {
  auto* ds = Find(ncid);
  if (!ds) return kBadId;
  const auto& h = ds->header();
  if (dimid < 0 || static_cast<std::size_t>(dimid) >= h.dims.size())
    return static_cast<int>(pnc::Err::kBadDim);
  const auto& d = h.dims[static_cast<std::size_t>(dimid)];
  if (name) std::strcpy(name, d.name.c_str());
  if (lenp)
    *lenp = static_cast<MPI_Offset>(d.is_unlimited() ? h.numrecs : d.len);
  return NC_NOERR;
}
int ncmpi_inq_dimlen(int ncid, int dimid, MPI_Offset* lenp) {
  return ncmpi_inq_dim(ncid, dimid, nullptr, lenp);
}

int ncmpi_inq_varid(int ncid, const char* name, int* varidp) {
  auto* ds = Find(ncid);
  if (!ds) return kBadId;
  auto r = ds->VarId(name);
  if (!r.ok()) return r.status().raw();
  if (varidp) *varidp = r.value();
  return NC_NOERR;
}

int ncmpi_inq_var(int ncid, int varid, char* name, int* xtypep, int* ndimsp,
                  int* dimids, int* nattsp) {
  auto* ds = Find(ncid);
  if (!ds) return kBadId;
  const auto& h = ds->header();
  if (varid < 0 || static_cast<std::size_t>(varid) >= h.vars.size())
    return kNotVarErr;
  const auto& v = h.vars[static_cast<std::size_t>(varid)];
  if (name) std::strcpy(name, v.name.c_str());
  if (xtypep) *xtypep = static_cast<int>(v.type);
  if (ndimsp) *ndimsp = static_cast<int>(v.dimids.size());
  if (dimids)
    for (std::size_t i = 0; i < v.dimids.size(); ++i)
      dimids[i] = v.dimids[i];
  if (nattsp) *nattsp = static_cast<int>(v.attrs.size());
  return NC_NOERR;
}

int ncmpi_inq_num_rec_vars(int ncid, int* nump) {
  auto* ds = Find(ncid);
  if (!ds) return kBadId;
  int n = 0;
  for (int v = 0; v < ds->nvars(); ++v)
    if (ds->header().IsRecordVar(v)) ++n;
  if (nump) *nump = n;
  return NC_NOERR;
}

int ncmpi_inq_recsize(int ncid, MPI_Offset* recsizep) {
  auto* ds = Find(ncid);
  if (!ds) return kBadId;
  if (recsizep) *recsizep = static_cast<MPI_Offset>(ds->header().recsize());
  return NC_NOERR;
}

pnc::Result<Dataset*> ncmpi_dataset(int ncid) {
  auto* ds = Find(ncid);
  if (!ds) return pnc::Status(pnc::Err::kBadId);
  return ds;
}

// -------------------------------------------------------- data access

namespace {

template <typename T>
int PutVaraImpl(int ncid, int varid, const MPI_Offset* start,
                const MPI_Offset* count, const T* op, bool all) {
  auto* ds = Find(ncid);
  if (!ds) return kBadId;
  auto rank = VarRank(ds, varid);
  if (!rank.ok()) return rank.status().raw();
  auto st = ToU64(start, rank.value());
  auto ct = ToU64(count, rank.value());
  const std::uint64_t n = ncformat::AccessElems(ct);
  std::span<const T> data(op, n);
  return (all ? ds->PutVaraAll<T>(varid, st, ct, data)
              : ds->PutVara<T>(varid, st, ct, data))
      .raw();
}

template <typename T>
int GetVaraImpl(int ncid, int varid, const MPI_Offset* start,
                const MPI_Offset* count, T* ip, bool all) {
  auto* ds = Find(ncid);
  if (!ds) return kBadId;
  auto rank = VarRank(ds, varid);
  if (!rank.ok()) return rank.status().raw();
  auto st = ToU64(start, rank.value());
  auto ct = ToU64(count, rank.value());
  const std::uint64_t n = ncformat::AccessElems(ct);
  std::span<T> out(ip, n);
  return (all ? ds->GetVaraAll<T>(varid, st, ct, out)
              : ds->GetVara<T>(varid, st, ct, out))
      .raw();
}

template <typename T>
int PutVarsImpl(int ncid, int varid, const MPI_Offset* start,
                const MPI_Offset* count, const MPI_Offset* stride,
                const T* op, bool all) {
  auto* ds = Find(ncid);
  if (!ds) return kBadId;
  auto rank = VarRank(ds, varid);
  if (!rank.ok()) return rank.status().raw();
  auto st = ToU64(start, rank.value());
  auto ct = ToU64(count, rank.value());
  auto sd = ToU64(stride, rank.value());
  const std::uint64_t n = ncformat::AccessElems(ct);
  std::span<const T> data(op, n);
  return (all ? ds->PutVarsAll<T>(varid, st, ct, sd, data)
              : ds->PutVars<T>(varid, st, ct, sd, data))
      .raw();
}

template <typename T>
int GetVarsImpl(int ncid, int varid, const MPI_Offset* start,
                const MPI_Offset* count, const MPI_Offset* stride, T* ip,
                bool all) {
  auto* ds = Find(ncid);
  if (!ds) return kBadId;
  auto rank = VarRank(ds, varid);
  if (!rank.ok()) return rank.status().raw();
  auto st = ToU64(start, rank.value());
  auto ct = ToU64(count, rank.value());
  auto sd = ToU64(stride, rank.value());
  const std::uint64_t n = ncformat::AccessElems(ct);
  std::span<T> out(ip, n);
  return (all ? ds->GetVarsAll<T>(varid, st, ct, sd, out)
              : ds->GetVars<T>(varid, st, ct, sd, out))
      .raw();
}

template <typename T>
int PutVar1Impl(int ncid, int varid, const MPI_Offset* index, const T* op) {
  auto* ds = Find(ncid);
  if (!ds) return kBadId;
  auto rank = VarRank(ds, varid);
  if (!rank.ok()) return rank.status().raw();
  auto idx = ToU64(index, rank.value());
  return ds->PutVar1<T>(varid, idx, *op).raw();
}

template <typename T>
int GetVar1Impl(int ncid, int varid, const MPI_Offset* index, T* ip) {
  auto* ds = Find(ncid);
  if (!ds) return kBadId;
  auto rank = VarRank(ds, varid);
  if (!rank.ok()) return rank.status().raw();
  auto idx = ToU64(index, rank.value());
  return ds->GetVar1<T>(varid, idx, *ip).raw();
}

template <typename T>
int PutVarImpl(int ncid, int varid, const T* op, bool all) {
  auto* ds = Find(ncid);
  if (!ds) return kBadId;
  auto rank = VarRank(ds, varid);
  if (!rank.ok()) return rank.status().raw();
  // Mirror the C API contract: the buffer holds the entire variable (all
  // current records for record variables).
  const std::uint64_t n = pnc::ShapeProduct(ds->header().VarShape(varid));
  std::span<const T> data(op, n);
  return (all ? ds->PutVarAll<T>(varid, data) : ds->PutVar<T>(varid, data))
      .raw();
}

template <typename T>
int GetVarImpl(int ncid, int varid, T* ip, bool all) {
  auto* ds = Find(ncid);
  if (!ds) return kBadId;
  auto rank = VarRank(ds, varid);
  if (!rank.ok()) return rank.status().raw();
  const std::uint64_t n = pnc::ShapeProduct(ds->header().VarShape(varid));
  std::span<T> out(ip, n);
  return (all ? ds->GetVarAll<T>(varid, out) : ds->GetVar<T>(varid, out))
      .raw();
}

}  // namespace

#define PNETCDF_CAPI_DEFINE(SUFFIX, CTYPE)                                    \
  int ncmpi_put_var1_##SUFFIX(int ncid, int varid, const MPI_Offset* index,   \
                              const CTYPE* op) {                              \
    return PutVar1Impl<CTYPE>(ncid, varid, index, op);                        \
  }                                                                           \
  int ncmpi_get_var1_##SUFFIX(int ncid, int varid, const MPI_Offset* index,   \
                              CTYPE* ip) {                                    \
    return GetVar1Impl<CTYPE>(ncid, varid, index, ip);                        \
  }                                                                           \
  int ncmpi_put_var_##SUFFIX(int ncid, int varid, const CTYPE* op) {          \
    return PutVarImpl<CTYPE>(ncid, varid, op, false);                         \
  }                                                                           \
  int ncmpi_get_var_##SUFFIX(int ncid, int varid, CTYPE* ip) {                \
    return GetVarImpl<CTYPE>(ncid, varid, ip, false);                         \
  }                                                                           \
  int ncmpi_put_var_##SUFFIX##_all(int ncid, int varid, const CTYPE* op) {    \
    return PutVarImpl<CTYPE>(ncid, varid, op, true);                          \
  }                                                                           \
  int ncmpi_get_var_##SUFFIX##_all(int ncid, int varid, CTYPE* ip) {          \
    return GetVarImpl<CTYPE>(ncid, varid, ip, true);                          \
  }                                                                           \
  int ncmpi_put_vara_##SUFFIX(int ncid, int varid, const MPI_Offset* start,   \
                              const MPI_Offset* count, const CTYPE* op) {     \
    return PutVaraImpl<CTYPE>(ncid, varid, start, count, op, false);          \
  }                                                                           \
  int ncmpi_get_vara_##SUFFIX(int ncid, int varid, const MPI_Offset* start,   \
                              const MPI_Offset* count, CTYPE* ip) {           \
    return GetVaraImpl<CTYPE>(ncid, varid, start, count, ip, false);          \
  }                                                                           \
  int ncmpi_put_vara_##SUFFIX##_all(int ncid, int varid,                      \
                                    const MPI_Offset* start,                  \
                                    const MPI_Offset* count,                  \
                                    const CTYPE* op) {                        \
    return PutVaraImpl<CTYPE>(ncid, varid, start, count, op, true);           \
  }                                                                           \
  int ncmpi_get_vara_##SUFFIX##_all(int ncid, int varid,                      \
                                    const MPI_Offset* start,                  \
                                    const MPI_Offset* count, CTYPE* ip) {     \
    return GetVaraImpl<CTYPE>(ncid, varid, start, count, ip, true);           \
  }                                                                           \
  int ncmpi_put_vars_##SUFFIX(int ncid, int varid, const MPI_Offset* start,   \
                              const MPI_Offset* count,                        \
                              const MPI_Offset* stride, const CTYPE* op) {    \
    return PutVarsImpl<CTYPE>(ncid, varid, start, count, stride, op, false);  \
  }                                                                           \
  int ncmpi_get_vars_##SUFFIX(int ncid, int varid, const MPI_Offset* start,   \
                              const MPI_Offset* count,                        \
                              const MPI_Offset* stride, CTYPE* ip) {          \
    return GetVarsImpl<CTYPE>(ncid, varid, start, count, stride, ip, false);  \
  }                                                                           \
  int ncmpi_put_vars_##SUFFIX##_all(                                          \
      int ncid, int varid, const MPI_Offset* start, const MPI_Offset* count,  \
      const MPI_Offset* stride, const CTYPE* op) {                            \
    return PutVarsImpl<CTYPE>(ncid, varid, start, count, stride, op, true);   \
  }                                                                           \
  int ncmpi_get_vars_##SUFFIX##_all(                                          \
      int ncid, int varid, const MPI_Offset* start, const MPI_Offset* count,  \
      const MPI_Offset* stride, CTYPE* ip) {                                  \
    return GetVarsImpl<CTYPE>(ncid, varid, start, count, stride, ip, true);   \
  }

PNETCDF_CAPI_DEFINE(text, char)
PNETCDF_CAPI_DEFINE(schar, signed char)
PNETCDF_CAPI_DEFINE(short, short)
PNETCDF_CAPI_DEFINE(int, int)
PNETCDF_CAPI_DEFINE(float, float)
PNETCDF_CAPI_DEFINE(double, double)
PNETCDF_CAPI_DEFINE(longlong, long long)
#undef PNETCDF_CAPI_DEFINE

// --------------------------------------------------- nonblocking access

namespace {

template <typename T>
int IputImpl(int ncid, int varid, const MPI_Offset* start,
             const MPI_Offset* count, const T* op, int* request) {
  auto* q = Queue(ncid);
  if (!q) return kBadId;
  auto* ds = Find(ncid);
  auto rank = VarRank(ds, varid);
  if (!rank.ok()) return rank.status().raw();
  auto st = ToU64(start, rank.value());
  auto ct = ToU64(count, rank.value());
  const std::uint64_t n = ncformat::AccessElems(ct);
  auto r = q->IputVara<T>(varid, st, ct, std::span<const T>(op, n));
  if (!r.ok()) return r.status().raw();
  if (request) *request = r.value();
  return NC_NOERR;
}

template <typename T>
int IgetImpl(int ncid, int varid, const MPI_Offset* start,
             const MPI_Offset* count, T* ip, int* request) {
  auto* q = Queue(ncid);
  if (!q) return kBadId;
  auto* ds = Find(ncid);
  auto rank = VarRank(ds, varid);
  if (!rank.ok()) return rank.status().raw();
  auto st = ToU64(start, rank.value());
  auto ct = ToU64(count, rank.value());
  const std::uint64_t n = ncformat::AccessElems(ct);
  auto r = q->IgetVara<T>(varid, st, ct, std::span<T>(ip, n));
  if (!r.ok()) return r.status().raw();
  if (request) *request = r.value();
  return NC_NOERR;
}

}  // namespace

#define PNETCDF_CAPI_DEFINE_NB(SUFFIX, CTYPE)                                 \
  int ncmpi_iput_vara_##SUFFIX(int ncid, int varid, const MPI_Offset* start,  \
                               const MPI_Offset* count, const CTYPE* op,      \
                               int* request) {                                \
    return IputImpl<CTYPE>(ncid, varid, start, count, op, request);           \
  }                                                                           \
  int ncmpi_iget_vara_##SUFFIX(int ncid, int varid, const MPI_Offset* start,  \
                               const MPI_Offset* count, CTYPE* ip,            \
                               int* request) {                                \
    return IgetImpl<CTYPE>(ncid, varid, start, count, ip, request);           \
  }

PNETCDF_CAPI_DEFINE_NB(text, char)
PNETCDF_CAPI_DEFINE_NB(schar, signed char)
PNETCDF_CAPI_DEFINE_NB(short, short)
PNETCDF_CAPI_DEFINE_NB(int, int)
PNETCDF_CAPI_DEFINE_NB(float, float)
PNETCDF_CAPI_DEFINE_NB(double, double)
PNETCDF_CAPI_DEFINE_NB(longlong, long long)
#undef PNETCDF_CAPI_DEFINE_NB

int ncmpi_wait_all(int ncid, int nreqs, int* requests, int* statuses) {
  auto* q = Queue(ncid);
  if (!q) return kBadId;
  std::vector<pnc::Status> sts;
  const pnc::Status overall = q->WaitAll(&sts);
  if (statuses && requests) {
    // The queue reports statuses in request-id (posting) order; ids are
    // dense and increasing, so map by position of the sorted request list.
    std::vector<int> order(requests, requests + nreqs);
    std::vector<int> sorted = order;
    std::sort(sorted.begin(), sorted.end());
    for (int i = 0; i < nreqs; ++i) {
      const auto pos = static_cast<std::size_t>(
          std::lower_bound(sorted.begin(), sorted.end(), order[i]) -
          sorted.begin());
      statuses[i] = pos < sts.size() ? sts[pos].raw() : NC_NOERR;
    }
  }
  return overall.raw();
}

}  // namespace pnetcdf::capi
