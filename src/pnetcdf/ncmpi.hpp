// The ncmpi_* C-style interface (paper §4: "We distinguish the parallel API
// from the original serial API by prefixing the C function calls with
// ncmpi_").
//
// This is the flat-function face of the library, mirroring the production
// PnetCDF C API so that code written against it ports by search-and-replace:
// integer ncid handles, int error codes (NC_NOERR == 0, negative on error),
// MPI_Offset start/count vectors, and the typed data-access function matrix
// (put/get x var1/var/vara/vars x type x optional _all).
//
// Environment adaptations: the first arguments of ncmpi_create/open take the
// simmpi communicator and the simulated file system instead of MPI_Comm and
// a path-resolved mount. Handle tables are per rank (thread), as they would
// be per process under real MPI.
#pragma once

#include "pnetcdf/dataset.hpp"

namespace pnetcdf::capi {

using MPI_Offset = long long;

// nc_type tags (match netcdf.h).
constexpr int NC_BYTE = 1;
constexpr int NC_CHAR = 2;
constexpr int NC_SHORT = 3;
constexpr int NC_INT = 4;
constexpr int NC_FLOAT = 5;
constexpr int NC_DOUBLE = 6;

// create/open mode flags (match netcdf.h).
constexpr int NC_CLOBBER = 0;
constexpr int NC_NOCLOBBER = 0x0004;
constexpr int NC_NOWRITE = 0;
constexpr int NC_WRITE = 0x0001;
constexpr int NC_64BIT_OFFSET = 0x0200;

constexpr MPI_Offset NC_UNLIMITED = 0;
constexpr int NC_GLOBAL = -1;
constexpr int NC_NOERR = 0;

/// Human-readable error string (mirrors ncmpi_strerror).
const char* ncmpi_strerror(int err);

// ---- dataset functions ----
int ncmpi_create(simmpi::Comm comm, pfs::FileSystem& fs, const char* path,
                 int cmode, const simmpi::Info& info, int* ncidp);
int ncmpi_open(simmpi::Comm comm, pfs::FileSystem& fs, const char* path,
               int omode, const simmpi::Info& info, int* ncidp);
int ncmpi_redef(int ncid);
int ncmpi_enddef(int ncid);
int ncmpi_sync(int ncid);
int ncmpi_abort(int ncid);
int ncmpi_close(int ncid);
int ncmpi_begin_indep_data(int ncid);
int ncmpi_end_indep_data(int ncid);

// ---- define mode functions ----
int ncmpi_def_dim(int ncid, const char* name, MPI_Offset len, int* idp);
int ncmpi_def_var(int ncid, const char* name, int xtype, int ndims,
                  const int* dimids, int* varidp);
int ncmpi_rename_dim(int ncid, int dimid, const char* name);
int ncmpi_rename_var(int ncid, int varid, const char* name);

// ---- attribute functions ----
int ncmpi_put_att_text(int ncid, int varid, const char* name, MPI_Offset len,
                       const char* op);
int ncmpi_get_att_text(int ncid, int varid, const char* name, char* ip);
int ncmpi_put_att_double(int ncid, int varid, const char* name, int xtype,
                         MPI_Offset len, const double* op);
int ncmpi_get_att_double(int ncid, int varid, const char* name, double* ip);
int ncmpi_put_att_int(int ncid, int varid, const char* name, int xtype,
                      MPI_Offset len, const int* op);
int ncmpi_get_att_int(int ncid, int varid, const char* name, int* ip);
int ncmpi_inq_att(int ncid, int varid, const char* name, int* xtypep,
                  MPI_Offset* lenp);
int ncmpi_del_att(int ncid, int varid, const char* name);

// ---- inquiry functions ----
int ncmpi_inq(int ncid, int* ndimsp, int* nvarsp, int* ngattsp,
              int* unlimdimidp);
int ncmpi_inq_ndims(int ncid, int* ndimsp);
int ncmpi_inq_nvars(int ncid, int* nvarsp);
int ncmpi_inq_unlimdim(int ncid, int* unlimdimidp);
int ncmpi_inq_dimid(int ncid, const char* name, int* idp);
int ncmpi_inq_dim(int ncid, int dimid, char* name, MPI_Offset* lenp);
int ncmpi_inq_dimlen(int ncid, int dimid, MPI_Offset* lenp);
int ncmpi_inq_varid(int ncid, const char* name, int* varidp);
int ncmpi_inq_var(int ncid, int varid, char* name, int* xtypep, int* ndimsp,
                  int* dimids, int* nattsp);
int ncmpi_inq_num_rec_vars(int ncid, int* nump);
int ncmpi_inq_recsize(int ncid, MPI_Offset* recsizep);

// ---- data access functions (typed matrix) ----
// For every external C type suffix {text, schar, short, int, float, double,
// longlong} there are put/get variants for var1 (single element), var
// (whole variable), vara (subarray) and vars (strided subarray), each in an
// independent and a collective (_all) flavor, mirroring the production API.
#define PNETCDF_CAPI_DECLARE(SUFFIX, CTYPE)                                   \
  int ncmpi_put_var1_##SUFFIX(int ncid, int varid, const MPI_Offset* index,   \
                              const CTYPE* op);                               \
  int ncmpi_get_var1_##SUFFIX(int ncid, int varid, const MPI_Offset* index,   \
                              CTYPE* ip);                                     \
  int ncmpi_put_var_##SUFFIX(int ncid, int varid, const CTYPE* op);           \
  int ncmpi_get_var_##SUFFIX(int ncid, int varid, CTYPE* ip);                 \
  int ncmpi_put_var_##SUFFIX##_all(int ncid, int varid, const CTYPE* op);     \
  int ncmpi_get_var_##SUFFIX##_all(int ncid, int varid, CTYPE* ip);           \
  int ncmpi_put_vara_##SUFFIX(int ncid, int varid, const MPI_Offset* start,   \
                              const MPI_Offset* count, const CTYPE* op);      \
  int ncmpi_get_vara_##SUFFIX(int ncid, int varid, const MPI_Offset* start,   \
                              const MPI_Offset* count, CTYPE* ip);            \
  int ncmpi_put_vara_##SUFFIX##_all(int ncid, int varid,                      \
                                    const MPI_Offset* start,                  \
                                    const MPI_Offset* count, const CTYPE* op);\
  int ncmpi_get_vara_##SUFFIX##_all(int ncid, int varid,                      \
                                    const MPI_Offset* start,                  \
                                    const MPI_Offset* count, CTYPE* ip);      \
  int ncmpi_put_vars_##SUFFIX(int ncid, int varid, const MPI_Offset* start,   \
                              const MPI_Offset* count,                        \
                              const MPI_Offset* stride, const CTYPE* op);     \
  int ncmpi_get_vars_##SUFFIX(int ncid, int varid, const MPI_Offset* start,   \
                              const MPI_Offset* count,                        \
                              const MPI_Offset* stride, CTYPE* ip);           \
  int ncmpi_put_vars_##SUFFIX##_all(                                          \
      int ncid, int varid, const MPI_Offset* start, const MPI_Offset* count,  \
      const MPI_Offset* stride, const CTYPE* op);                             \
  int ncmpi_get_vars_##SUFFIX##_all(                                          \
      int ncid, int varid, const MPI_Offset* start, const MPI_Offset* count,  \
      const MPI_Offset* stride, CTYPE* ip);

PNETCDF_CAPI_DECLARE(text, char)
PNETCDF_CAPI_DECLARE(schar, signed char)
PNETCDF_CAPI_DECLARE(short, short)
PNETCDF_CAPI_DECLARE(int, int)
PNETCDF_CAPI_DECLARE(float, float)
PNETCDF_CAPI_DECLARE(double, double)
PNETCDF_CAPI_DECLARE(longlong, long long)
#undef PNETCDF_CAPI_DECLARE

// ---- nonblocking data access (ncmpi_iput/iget + ncmpi_wait_all) ----
// Posted requests aggregate into one collective at wait time (§4.2.2).
#define PNETCDF_CAPI_DECLARE_NB(SUFFIX, CTYPE)                                \
  int ncmpi_iput_vara_##SUFFIX(int ncid, int varid, const MPI_Offset* start,  \
                               const MPI_Offset* count, const CTYPE* op,      \
                               int* request);                                 \
  int ncmpi_iget_vara_##SUFFIX(int ncid, int varid, const MPI_Offset* start,  \
                               const MPI_Offset* count, CTYPE* ip,            \
                               int* request);

PNETCDF_CAPI_DECLARE_NB(text, char)
PNETCDF_CAPI_DECLARE_NB(schar, signed char)
PNETCDF_CAPI_DECLARE_NB(short, short)
PNETCDF_CAPI_DECLARE_NB(int, int)
PNETCDF_CAPI_DECLARE_NB(float, float)
PNETCDF_CAPI_DECLARE_NB(double, double)
PNETCDF_CAPI_DECLARE_NB(longlong, long long)
#undef PNETCDF_CAPI_DECLARE_NB

/// Collective: complete `nreqs` posted requests (pass the ids returned by
/// the iput/iget calls). Per-request statuses land in `statuses` when
/// non-null. Completes ALL pending requests of the ncid, as the production
/// library allows with NC_REQ_ALL; the id list is used for status mapping.
int ncmpi_wait_all(int ncid, int nreqs, int* requests, int* statuses);

/// Access the underlying C++ Dataset of a handle (extension point; not part
/// of the mirrored API).
pnc::Result<Dataset*> ncmpi_dataset(int ncid);

}  // namespace pnetcdf::capi
