// Conversion between in-memory C++ types and external netCDF types.
//
// The netCDF data access functions are typed (put_vara_double may target an
// NC_FLOAT variable); the library converts values and byte order on the way
// through, reporting NC_ERANGE when a value cannot be represented externally
// (the value is still stored, cast, exactly as the reference library does).
// Text (NC_CHAR) does not convert to or from numeric types.
#pragma once

#include <cmath>
#include <cstring>
#include <limits>
#include <span>
#include <type_traits>

#include "format/types.hpp"
#include "util/status.hpp"
#include "util/xdr.hpp"

namespace ncformat {

namespace detail {

template <NcType E>
struct ExternalRepr;
template <>
struct ExternalRepr<NcType::kByte> { using type = signed char; };
template <>
struct ExternalRepr<NcType::kChar> { using type = char; };
template <>
struct ExternalRepr<NcType::kShort> { using type = std::int16_t; };
template <>
struct ExternalRepr<NcType::kInt> { using type = std::int32_t; };
template <>
struct ExternalRepr<NcType::kFloat> { using type = float; };
template <>
struct ExternalRepr<NcType::kDouble> { using type = double; };

/// Checked narrowing: returns false when v is outside E's range.
template <typename E, typename T>
bool RangeOk(T v) {
  if constexpr (std::is_floating_point_v<E>) {
    if constexpr (std::is_floating_point_v<T>) {
      if (std::isnan(v) || std::isinf(v)) return true;  // propagate specials
      return static_cast<long double>(v) >=
                 -static_cast<long double>(std::numeric_limits<E>::max()) &&
             static_cast<long double>(v) <=
                 static_cast<long double>(std::numeric_limits<E>::max());
    } else {
      return true;  // every integer fits a float/double range (maybe rounded)
    }
  } else {
    if constexpr (std::is_floating_point_v<T>) {
      if (std::isnan(v) || std::isinf(v)) return false;
      return v >= static_cast<T>(std::numeric_limits<E>::min()) &&
             v <= static_cast<T>(std::numeric_limits<E>::max());
    } else {
      using C = std::common_type_t<long long, T>;
      return static_cast<C>(v) >=
                 static_cast<C>(std::numeric_limits<E>::min()) &&
             static_cast<C>(v) <= static_cast<C>(std::numeric_limits<E>::max());
    }
  }
}

template <typename T, NcType E>
pnc::Status ToExternalImpl(std::span<const T> in, std::byte* out) {
  using Ext = typename ExternalRepr<E>::type;
  bool range_err = false;
  if constexpr (std::is_same_v<T, Ext>) {
    pnc::xdr::EncodeArray<Ext>(in, out);
  } else {
    for (std::size_t i = 0; i < in.size(); ++i) {
      if (!RangeOk<Ext>(in[i])) range_err = true;
      Ext e = static_cast<Ext>(in[i]);
      e = pnc::xdr::ToBig(e);
      std::memcpy(out + i * sizeof(Ext), &e, sizeof(Ext));
    }
  }
  return range_err ? pnc::Status(pnc::Err::kRange) : pnc::Status::Ok();
}

template <typename T, NcType E>
pnc::Status FromExternalImpl(const std::byte* in, std::span<T> out) {
  using Ext = typename ExternalRepr<E>::type;
  bool range_err = false;
  if constexpr (std::is_same_v<T, Ext>) {
    pnc::xdr::DecodeArray<Ext>(in, out);
  } else {
    for (std::size_t i = 0; i < out.size(); ++i) {
      Ext e;
      std::memcpy(&e, in + i * sizeof(Ext), sizeof(Ext));
      e = pnc::xdr::FromBig(e);
      if (!RangeOk<T>(e)) range_err = true;
      out[i] = static_cast<T>(e);
    }
  }
  return range_err ? pnc::Status(pnc::Err::kRange) : pnc::Status::Ok();
}

}  // namespace detail

/// True when memory type T may be converted to/from external type `ext`.
/// Text and numbers never interconvert in the classic data model.
template <typename T>
bool ConvertibleTo(NcType ext) {
  if constexpr (std::is_same_v<T, char>) {
    return ext == NcType::kChar;
  } else {
    return ext != NcType::kChar;
  }
}

/// Convert `in` to the external (big-endian, on-disk) representation of
/// `ext`, writing in.size() * TypeSize(ext) bytes. Returns kRange if any
/// value was out of range (conversion still completes).
template <typename T>
pnc::Status ToExternal(std::span<const T> in, NcType ext, std::byte* out) {
  if (!ConvertibleTo<T>(ext)) return pnc::Status(pnc::Err::kBadType, "char/number");
  switch (ext) {
    case NcType::kByte: return detail::ToExternalImpl<T, NcType::kByte>(in, out);
    case NcType::kChar: return detail::ToExternalImpl<T, NcType::kChar>(in, out);
    case NcType::kShort: return detail::ToExternalImpl<T, NcType::kShort>(in, out);
    case NcType::kInt: return detail::ToExternalImpl<T, NcType::kInt>(in, out);
    case NcType::kFloat: return detail::ToExternalImpl<T, NcType::kFloat>(in, out);
    case NcType::kDouble: return detail::ToExternalImpl<T, NcType::kDouble>(in, out);
  }
  return pnc::Status(pnc::Err::kBadType);
}

/// Convert out.size() values from the external representation of `ext`.
template <typename T>
pnc::Status FromExternal(const std::byte* in, NcType ext, std::span<T> out) {
  if (!ConvertibleTo<T>(ext)) return pnc::Status(pnc::Err::kBadType, "char/number");
  switch (ext) {
    case NcType::kByte: return detail::FromExternalImpl<T, NcType::kByte>(in, out);
    case NcType::kChar: return detail::FromExternalImpl<T, NcType::kChar>(in, out);
    case NcType::kShort: return detail::FromExternalImpl<T, NcType::kShort>(in, out);
    case NcType::kInt: return detail::FromExternalImpl<T, NcType::kInt>(in, out);
    case NcType::kFloat: return detail::FromExternalImpl<T, NcType::kFloat>(in, out);
    case NcType::kDouble: return detail::FromExternalImpl<T, NcType::kDouble>(in, out);
  }
  return pnc::Status(pnc::Err::kBadType);
}

}  // namespace ncformat
