#include "format/header.hpp"

#include <algorithm>
#include <cstring>
#include <limits>
#include <set>

namespace ncformat {

namespace {

// List tags from the file format grammar.
constexpr std::int32_t kTagDimension = 0x0A;
constexpr std::int32_t kTagVariable = 0x0B;
constexpr std::int32_t kTagAttribute = 0x0C;

bool NameOk(const std::string& name) {
  if (name.empty() || name.size() > kMaxName) return false;
  if (name.find('/') != std::string::npos) return false;
  const char c = name.front();
  const bool alnum = (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
                     (c >= '0' && c <= '9') || c == '_';
  return alnum;
}

std::uint64_t NameEncodedSize(const std::string& name) {
  return 4 + pnc::xdr::RoundUp4(name.size());
}

std::uint64_t AttrEncodedSize(const Attr& a) {
  return NameEncodedSize(a.name) + 4 + 4 +
         pnc::xdr::RoundUp4(a.nelems() * TypeSize(a.type));
}

/// Convert host-order packed values to the big-endian on-disk form.
void EncodeValues(pnc::xdr::Encoder& enc, NcType type,
                  pnc::ConstByteSpan host) {
  const std::size_t n = host.size();
  std::vector<std::byte> out(n);
  switch (type) {
    case NcType::kByte:
    case NcType::kChar:
      std::memcpy(out.data(), host.data(), n);
      break;
    case NcType::kShort:
      pnc::xdr::EncodeArray<std::int16_t>(
          {reinterpret_cast<const std::int16_t*>(host.data()), n / 2},
          out.data());
      break;
    case NcType::kInt:
      pnc::xdr::EncodeArray<std::int32_t>(
          {reinterpret_cast<const std::int32_t*>(host.data()), n / 4},
          out.data());
      break;
    case NcType::kFloat:
      pnc::xdr::EncodeArray<float>(
          {reinterpret_cast<const float*>(host.data()), n / 4}, out.data());
      break;
    case NcType::kDouble:
      pnc::xdr::EncodeArray<double>(
          {reinterpret_cast<const double*>(host.data()), n / 8}, out.data());
      break;
  }
  enc.PutBytes(out);
  enc.PadTo4();
}

pnc::Status DecodeValues(pnc::xdr::Decoder& dec, NcType type,
                         std::uint64_t nelems, std::vector<std::byte>& host) {
  const std::uint64_t n = nelems * TypeSize(type);
  std::vector<std::byte> raw(n);
  PNC_RETURN_IF_ERROR(dec.GetBytes(raw));
  PNC_RETURN_IF_ERROR(dec.SkipPadTo4());
  host.resize(n);
  switch (type) {
    case NcType::kByte:
    case NcType::kChar:
      std::memcpy(host.data(), raw.data(), n);
      break;
    case NcType::kShort:
      pnc::xdr::DecodeArray<std::int16_t>(
          raw.data(), {reinterpret_cast<std::int16_t*>(host.data()), n / 2});
      break;
    case NcType::kInt:
      pnc::xdr::DecodeArray<std::int32_t>(
          raw.data(), {reinterpret_cast<std::int32_t*>(host.data()), n / 4});
      break;
    case NcType::kFloat:
      pnc::xdr::DecodeArray<float>(
          raw.data(), {reinterpret_cast<float*>(host.data()), n / 4});
      break;
    case NcType::kDouble:
      pnc::xdr::DecodeArray<double>(
          raw.data(), {reinterpret_cast<double*>(host.data()), n / 8});
      break;
  }
  return pnc::Status::Ok();
}

void EncodeAttrList(pnc::xdr::Encoder& enc, const std::vector<Attr>& attrs) {
  if (attrs.empty()) {
    enc.PutI32(0);
    enc.PutI32(0);
    return;
  }
  enc.PutI32(kTagAttribute);
  enc.PutI32(static_cast<std::int32_t>(attrs.size()));
  for (const auto& a : attrs) {
    enc.PutName(a.name);
    enc.PutI32(static_cast<std::int32_t>(a.type));
    enc.PutI32(static_cast<std::int32_t>(a.nelems()));
    EncodeValues(enc, a.type, a.data);
  }
}

/// Untrusted counts from the file are bounded against what the remaining
/// buffer could possibly hold (each list entry costs at least `min_entry`
/// encoded bytes), so a corrupted count cannot trigger a huge allocation —
/// it reports truncation instead.
pnc::Status CheckedCount(const pnc::xdr::Decoder& dec, std::int32_t count,
                         std::uint64_t min_entry) {
  if (count < 0) return pnc::Status(pnc::Err::kNotNc, "negative count");
  if (static_cast<std::uint64_t>(count) * min_entry > dec.remaining())
    return pnc::Status(pnc::Err::kTrunc, "list count exceeds buffer");
  return pnc::Status::Ok();
}

pnc::Status DecodeAttrList(pnc::xdr::Decoder& dec, std::vector<Attr>& attrs) {
  std::int32_t tag = 0, count = 0;
  PNC_RETURN_IF_ERROR(dec.GetI32(tag));
  PNC_RETURN_IF_ERROR(dec.GetI32(count));
  if (tag == 0 && count == 0) return pnc::Status::Ok();
  if (tag != kTagAttribute || count < 0)
    return pnc::Status(pnc::Err::kNotNc, "bad attribute list tag");
  PNC_RETURN_IF_ERROR(CheckedCount(dec, count, /*name+type+nelems=*/12));
  attrs.resize(static_cast<std::size_t>(count));
  for (auto& a : attrs) {
    PNC_RETURN_IF_ERROR(dec.GetName(a.name));
    std::int32_t t = 0, nelems = 0;
    PNC_RETURN_IF_ERROR(dec.GetI32(t));
    if (!IsValidType(t)) return pnc::Status(pnc::Err::kBadType, a.name);
    a.type = static_cast<NcType>(t);
    PNC_RETURN_IF_ERROR(dec.GetI32(nelems));
    if (nelems < 0) return pnc::Status(pnc::Err::kNotNc, "negative nelems");
    if (static_cast<std::uint64_t>(nelems) * TypeSize(a.type) >
        dec.remaining())
      return pnc::Status(pnc::Err::kTrunc, "attribute exceeds buffer");
    PNC_RETURN_IF_ERROR(
        DecodeValues(dec, a.type, static_cast<std::uint64_t>(nelems), a.data));
  }
  return pnc::Status::Ok();
}

}  // namespace

// ------------------------------------------------------------------- Attr

Attr Attr::Text(std::string name, std::string_view value) {
  Attr a;
  a.name = std::move(name);
  a.type = NcType::kChar;
  a.data.resize(value.size());
  std::memcpy(a.data.data(), value.data(), value.size());
  return a;
}

std::string Attr::AsText() const {
  return std::string(reinterpret_cast<const char*>(data.data()), data.size());
}

int Var::FindAttr(std::string_view aname) const {
  for (std::size_t i = 0; i < attrs.size(); ++i)
    if (attrs[i].name == aname) return static_cast<int>(i);
  return -1;
}

// ----------------------------------------------------------------- Header

int Header::unlimited_dimid() const {
  for (std::size_t i = 0; i < dims.size(); ++i)
    if (dims[i].is_unlimited()) return static_cast<int>(i);
  return -1;
}

int Header::FindDim(std::string_view name) const {
  for (std::size_t i = 0; i < dims.size(); ++i)
    if (dims[i].name == name) return static_cast<int>(i);
  return -1;
}

int Header::FindVar(std::string_view name) const {
  for (std::size_t i = 0; i < vars.size(); ++i)
    if (vars[i].name == name) return static_cast<int>(i);
  return -1;
}

bool Header::IsRecordVar(int varid) const {
  const auto& v = vars[static_cast<std::size_t>(varid)];
  return !v.dimids.empty() &&
         dims[static_cast<std::size_t>(v.dimids[0])].is_unlimited();
}

std::vector<std::uint64_t> Header::VarShape(int varid) const {
  const auto& v = vars[static_cast<std::size_t>(varid)];
  std::vector<std::uint64_t> shape;
  shape.reserve(v.dimids.size());
  for (auto d : v.dimids) {
    const auto& dim = dims[static_cast<std::size_t>(d)];
    shape.push_back(dim.is_unlimited() ? numrecs : dim.len);
  }
  return shape;
}

std::uint64_t Header::VarInstanceElems(int varid) const {
  const auto& v = vars[static_cast<std::size_t>(varid)];
  std::uint64_t n = 1;
  for (std::size_t i = 0; i < v.dimids.size(); ++i) {
    const auto& dim = dims[static_cast<std::size_t>(v.dimids[i])];
    if (i == 0 && dim.is_unlimited()) continue;
    n *= dim.len;
  }
  return n;
}

std::uint64_t Header::recsize() const { return recsize_; }
std::uint64_t Header::data_begin() const { return data_begin_; }

std::uint64_t Header::FileSize() const {
  std::uint64_t end = data_begin_;
  for (std::size_t i = 0; i < vars.size(); ++i) {
    if (IsRecordVar(static_cast<int>(i))) continue;
    end = std::max(end, vars[i].begin + vars[i].vsize);
  }
  bool any_rec = false;
  std::uint64_t rec_base = 0;
  for (std::size_t i = 0; i < vars.size(); ++i) {
    if (!IsRecordVar(static_cast<int>(i))) continue;
    if (!any_rec || vars[i].begin < rec_base) rec_base = vars[i].begin;
    any_rec = true;
  }
  if (any_rec) end = std::max(end, rec_base + numrecs * recsize_);
  return end;
}

pnc::Status Header::Validate() const {
  if (version != 1 && version != 2)
    return pnc::Status(pnc::Err::kNotNc, "bad version");
  if (dims.size() > kMaxDims) return pnc::Status(pnc::Err::kMaxDims);
  if (vars.size() > kMaxVars) return pnc::Status(pnc::Err::kMaxVars);
  if (gatts.size() > kMaxAttrs) return pnc::Status(pnc::Err::kMaxAtts);

  std::set<std::string> seen;
  int n_unlimited = 0;
  for (const auto& d : dims) {
    if (!NameOk(d.name)) return pnc::Status(pnc::Err::kBadName, d.name);
    if (!seen.insert(d.name).second)
      return pnc::Status(pnc::Err::kNameInUse, d.name);
    if (d.is_unlimited()) ++n_unlimited;
  }
  if (n_unlimited > 1) return pnc::Status(pnc::Err::kUnlimit);

  auto check_attrs = [](const std::vector<Attr>& attrs) -> pnc::Status {
    std::set<std::string> names;
    for (const auto& a : attrs) {
      if (!NameOk(a.name)) return pnc::Status(pnc::Err::kBadName, a.name);
      if (!names.insert(a.name).second)
        return pnc::Status(pnc::Err::kNameInUse, a.name);
    }
    return pnc::Status::Ok();
  };
  PNC_RETURN_IF_ERROR(check_attrs(gatts));

  seen.clear();
  for (const auto& v : vars) {
    if (!NameOk(v.name)) return pnc::Status(pnc::Err::kBadName, v.name);
    if (!seen.insert(v.name).second)
      return pnc::Status(pnc::Err::kNameInUse, v.name);
    if (v.dimids.size() > kMaxVarDims) return pnc::Status(pnc::Err::kMaxDims);
    for (std::size_t i = 0; i < v.dimids.size(); ++i) {
      const auto d = v.dimids[i];
      if (d < 0 || static_cast<std::size_t>(d) >= dims.size())
        return pnc::Status(pnc::Err::kBadDim, v.name);
      // The unlimited dimension must be the most significant one (§3.1).
      if (dims[static_cast<std::size_t>(d)].is_unlimited() && i != 0)
        return pnc::Status(pnc::Err::kUnlimPos, v.name);
    }
    PNC_RETURN_IF_ERROR(check_attrs(v.attrs));
  }
  return pnc::Status::Ok();
}

pnc::Status Header::ComputeLayout(std::uint64_t min_data_begin) {
  PNC_RETURN_IF_ERROR(Validate());

  data_begin_ = std::max(pnc::xdr::RoundUp4(EncodedSize()),
                         pnc::xdr::RoundUp4(min_data_begin));

  // vsize: bytes per (record of the) variable, rounded up to 4.
  for (std::size_t i = 0; i < vars.size(); ++i) {
    auto& v = vars[i];
    const std::uint64_t raw =
        VarInstanceElems(static_cast<int>(i)) * TypeSize(v.type);
    v.vsize = pnc::xdr::RoundUp4(raw);
  }

  // Fixed-size arrays: contiguous, in definition order (Figure 1).
  std::uint64_t cursor = data_begin_;
  for (std::size_t i = 0; i < vars.size(); ++i) {
    if (IsRecordVar(static_cast<int>(i))) continue;
    vars[i].begin = cursor;
    cursor += vars[i].vsize;
  }

  // Record variables: their first records laid out back to back after the
  // fixed arrays; subsequent records repeat at recsize() intervals.
  std::uint64_t nrec_vars = 0;
  std::uint64_t rec_cursor = cursor;
  std::uint64_t rec_bytes = 0;
  std::uint64_t sole_raw = 0;
  for (std::size_t i = 0; i < vars.size(); ++i) {
    if (!IsRecordVar(static_cast<int>(i))) continue;
    vars[i].begin = rec_cursor;
    rec_cursor += vars[i].vsize;
    rec_bytes += vars[i].vsize;
    sole_raw = VarInstanceElems(static_cast<int>(i)) * TypeSize(vars[i].type);
    ++nrec_vars;
  }
  // Special case: a single record variable needs no inter-record padding.
  recsize_ = (nrec_vars == 1) ? sole_raw : rec_bytes;

  if (version == 1) {
    for (const auto& v : vars) {
      if (v.begin > std::numeric_limits<std::int32_t>::max())
        return pnc::Status(pnc::Err::kVarSize, v.name + " (needs CDF-2)");
    }
  }
  return pnc::Status::Ok();
}

std::uint64_t Header::EncodedSize() const {
  std::uint64_t n = 4 + 4;  // magic + numrecs
  n += 8;                   // dim_list tag+count
  for (const auto& d : dims) n += NameEncodedSize(d.name) + 4;
  n += 8;  // gatt_list
  for (const auto& a : gatts) n += AttrEncodedSize(a);
  n += 8;  // var_list
  for (const auto& v : vars) {
    n += NameEncodedSize(v.name) + 4 + 4 * v.dimids.size();
    n += 8;  // vatt_list
    for (const auto& a : v.attrs) n += AttrEncodedSize(a);
    n += 4 + 4;                      // nc_type + vsize
    n += (version == 2) ? 8u : 4u;   // begin
  }
  return n;
}

void Header::Encode(std::vector<std::byte>& out) const {
  pnc::xdr::Encoder enc(out);
  enc.PutU8('C');
  enc.PutU8('D');
  enc.PutU8('F');
  enc.PutU8(static_cast<std::uint8_t>(version));
  enc.PutU32(static_cast<std::uint32_t>(numrecs));

  if (dims.empty()) {
    enc.PutI32(0);
    enc.PutI32(0);
  } else {
    enc.PutI32(kTagDimension);
    enc.PutI32(static_cast<std::int32_t>(dims.size()));
    for (const auto& d : dims) {
      enc.PutName(d.name);
      enc.PutU32(static_cast<std::uint32_t>(d.len));
    }
  }

  EncodeAttrList(enc, gatts);

  if (vars.empty()) {
    enc.PutI32(0);
    enc.PutI32(0);
  } else {
    enc.PutI32(kTagVariable);
    enc.PutI32(static_cast<std::int32_t>(vars.size()));
    for (const auto& v : vars) {
      enc.PutName(v.name);
      enc.PutI32(static_cast<std::int32_t>(v.dimids.size()));
      for (auto d : v.dimids) enc.PutI32(d);
      EncodeAttrList(enc, v.attrs);
      enc.PutI32(static_cast<std::int32_t>(v.type));
      // vsize caps at the 32-bit sentinel for huge variables (format rule).
      enc.PutU32(static_cast<std::uint32_t>(
          std::min<std::uint64_t>(v.vsize, 0xFFFFFFFFULL)));
      if (version == 2) {
        enc.PutU64(v.begin);
      } else {
        enc.PutU32(static_cast<std::uint32_t>(v.begin));
      }
    }
  }
}

pnc::Result<Header> Header::Decode(pnc::ConstByteSpan in) {
  pnc::xdr::Decoder dec(in);
  std::array<std::byte, 4> magic{};
  PNC_RETURN_IF_ERROR(dec.GetBytes(magic));
  if (magic[0] != std::byte{'C'} || magic[1] != std::byte{'D'} ||
      magic[2] != std::byte{'F'})
    return pnc::Status(pnc::Err::kNotNc, "bad magic");
  Header h;
  h.version = static_cast<int>(magic[3]);
  if (h.version != 1 && h.version != 2)
    return pnc::Status(pnc::Err::kNotNc, "unsupported version");

  std::uint32_t numrecs = 0;
  PNC_RETURN_IF_ERROR(dec.GetU32(numrecs));
  h.numrecs = numrecs;

  std::int32_t tag = 0, count = 0;
  PNC_RETURN_IF_ERROR(dec.GetI32(tag));
  PNC_RETURN_IF_ERROR(dec.GetI32(count));
  if (!(tag == 0 && count == 0)) {
    if (tag != kTagDimension || count < 0)
      return pnc::Status(pnc::Err::kNotNc, "bad dim list");
    PNC_RETURN_IF_ERROR(CheckedCount(dec, count, /*name+len=*/8));
    h.dims.resize(static_cast<std::size_t>(count));
    for (auto& d : h.dims) {
      PNC_RETURN_IF_ERROR(dec.GetName(d.name));
      std::uint32_t len = 0;
      PNC_RETURN_IF_ERROR(dec.GetU32(len));
      d.len = len;
    }
  }

  PNC_RETURN_IF_ERROR(DecodeAttrList(dec, h.gatts));

  PNC_RETURN_IF_ERROR(dec.GetI32(tag));
  PNC_RETURN_IF_ERROR(dec.GetI32(count));
  if (!(tag == 0 && count == 0)) {
    if (tag != kTagVariable || count < 0)
      return pnc::Status(pnc::Err::kNotNc, "bad var list");
    PNC_RETURN_IF_ERROR(CheckedCount(dec, count, /*min var entry=*/28));
    h.vars.resize(static_cast<std::size_t>(count));
    for (auto& v : h.vars) {
      PNC_RETURN_IF_ERROR(dec.GetName(v.name));
      std::int32_t ndims = 0;
      PNC_RETURN_IF_ERROR(dec.GetI32(ndims));
      if (ndims < 0 || static_cast<std::size_t>(ndims) > kMaxVarDims)
        return pnc::Status(pnc::Err::kNotNc, "bad ndims");
      v.dimids.resize(static_cast<std::size_t>(ndims));
      for (auto& d : v.dimids) PNC_RETURN_IF_ERROR(dec.GetI32(d));
      PNC_RETURN_IF_ERROR(DecodeAttrList(dec, v.attrs));
      std::int32_t t = 0;
      PNC_RETURN_IF_ERROR(dec.GetI32(t));
      if (!IsValidType(t)) return pnc::Status(pnc::Err::kBadType, v.name);
      v.type = static_cast<NcType>(t);
      std::uint32_t vsize = 0;
      PNC_RETURN_IF_ERROR(dec.GetU32(vsize));
      v.vsize = vsize;
      if (h.version == 2) {
        std::uint64_t begin = 0;
        PNC_RETURN_IF_ERROR(dec.GetU64(begin));
        v.begin = begin;
      } else {
        std::uint32_t begin = 0;
        PNC_RETURN_IF_ERROR(dec.GetU32(begin));
        v.begin = begin;
      }
    }
  }

  PNC_RETURN_IF_ERROR(h.Validate());

  // Rebuild the derived layout values from what the file declares. The
  // vsize fields are recomputed (they are redundant with the shape) while
  // begin offsets are taken from the file, as the reference library does —
  // writers may leave extra header space.
  h.data_begin_ = pnc::xdr::RoundUp4(dec.pos());
  std::uint64_t nrec_vars = 0;
  std::uint64_t rec_bytes = 0;
  std::uint64_t sole_raw = 0;
  for (std::size_t i = 0; i < h.vars.size(); ++i) {
    auto& v = h.vars[i];
    const std::uint64_t raw =
        h.VarInstanceElems(static_cast<int>(i)) * TypeSize(v.type);
    v.vsize = pnc::xdr::RoundUp4(raw);
    if (h.IsRecordVar(static_cast<int>(i))) {
      rec_bytes += v.vsize;
      sole_raw = raw;
      ++nrec_vars;
    }
  }
  h.recsize_ = (nrec_vars == 1) ? sole_raw : rec_bytes;
  return h;
}

bool operator==(const Header& a, const Header& b) {
  auto attr_eq = [](const Attr& x, const Attr& y) {
    return x.name == y.name && x.type == y.type && x.data == y.data;
  };
  auto attrs_eq = [&](const std::vector<Attr>& x, const std::vector<Attr>& y) {
    return std::equal(x.begin(), x.end(), y.begin(), y.end(), attr_eq);
  };
  if (a.version != b.version || a.numrecs != b.numrecs) return false;
  if (a.dims.size() != b.dims.size() || a.vars.size() != b.vars.size())
    return false;
  for (std::size_t i = 0; i < a.dims.size(); ++i)
    if (a.dims[i].name != b.dims[i].name || a.dims[i].len != b.dims[i].len)
      return false;
  if (!attrs_eq(a.gatts, b.gatts)) return false;
  for (std::size_t i = 0; i < a.vars.size(); ++i) {
    const auto& x = a.vars[i];
    const auto& y = b.vars[i];
    if (x.name != y.name || x.dimids != y.dimids || x.type != y.type ||
        x.begin != y.begin || x.vsize != y.vsize || !attrs_eq(x.attrs, y.attrs))
      return false;
  }
  return true;
}

}  // namespace ncformat
