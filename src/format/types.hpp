// External (on-disk) netCDF data types.
#pragma once

#include <cstdint>
#include <string_view>

namespace ncformat {

/// The six external types of the netCDF classic format. Numeric values are
/// the on-disk tags from the file format specification.
enum class NcType : std::int32_t {
  kByte = 1,    ///< signed 8-bit
  kChar = 2,    ///< text
  kShort = 3,   ///< signed 16-bit, big-endian
  kInt = 4,     ///< signed 32-bit, big-endian
  kFloat = 5,   ///< IEEE-754 single, big-endian
  kDouble = 6,  ///< IEEE-754 double, big-endian
};

[[nodiscard]] constexpr bool IsValidType(std::int32_t t) {
  return t >= 1 && t <= 6;
}

[[nodiscard]] constexpr std::size_t TypeSize(NcType t) {
  switch (t) {
    case NcType::kByte:
    case NcType::kChar: return 1;
    case NcType::kShort: return 2;
    case NcType::kInt:
    case NcType::kFloat: return 4;
    case NcType::kDouble: return 8;
  }
  return 0;
}

[[nodiscard]] constexpr std::string_view TypeName(NcType t) {
  switch (t) {
    case NcType::kByte: return "byte";
    case NcType::kChar: return "char";
    case NcType::kShort: return "short";
    case NcType::kInt: return "int";
    case NcType::kFloat: return "float";
    case NcType::kDouble: return "double";
  }
  return "?";
}

}  // namespace ncformat
