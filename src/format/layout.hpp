// Mapping variable accesses to file byte regions.
//
// Every netCDF data access (single element, whole array, subarray, strided
// subarray) reduces to a set of contiguous byte extents in the file, derived
// from the variable's begin offset, its shape, and — for record variables —
// the record interleaving (record r of variable v lives at
// v.begin + r * recsize; Figure 1). Both the serial library (which does
// buffered POSIX-style I/O over the extents) and PnetCDF (which builds MPI
// file views from them) consume this one implementation.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "format/header.hpp"
#include "util/bytes.hpp"

namespace ncformat {

/// Access bounds checking policy: reads must stay within the current number
/// of records, while writes may grow the record dimension.
enum class AccessKind { kRead, kWrite };

/// Validate (start, count, stride) against the variable's shape. `stride`
/// may be empty (meaning all ones). Returns kInvalidCoords / kEdge /
/// kStride on violations, mirroring the netCDF error taxonomy.
pnc::Status ValidateAccess(const Header& h, int varid,
                           std::span<const std::uint64_t> start,
                           std::span<const std::uint64_t> count,
                           std::span<const std::uint64_t> stride,
                           AccessKind kind);

/// Compute the file extents touched by (start, count, stride) on `varid`,
/// appended to `out` in row-major element order (which is also ascending
/// file order). Adjacent extents are coalesced. Does not validate; call
/// ValidateAccess first.
void AccessRegions(const Header& h, int varid,
                   std::span<const std::uint64_t> start,
                   std::span<const std::uint64_t> count,
                   std::span<const std::uint64_t> stride,
                   std::vector<pnc::Extent>& out);

/// Number of elements selected by `count` (product; 1 for scalars).
std::uint64_t AccessElems(std::span<const std::uint64_t> count);

}  // namespace ncformat
