// End-to-end data integrity: per-chunk CRC32 map over the data region.
//
// The commit journal (commit.hpp) CRC-protects the header and numrecs, but
// the data region has no integrity story: a pfs bit flip sails through
// mpiio, pnetcdf, and the C API undetected. This module closes that hole
// with a chunked checksum map persisted in a `<path>.ncsum` sidecar:
//
//   offset  0  magic "NCSM01\0\0"
//   offset  8  commit slot (32 bytes)
//   offset 40  sum table bytes (the shadow region the slot commits)
//
//   slot  := seq u64 | table_len u64 | table_crc u32 | flags u32
//            | pad u32 (zero) | rec_crc u32             (all big-endian)
//   table := chunk_size u64 | data_begin u64 | entry_count u64
//            | entry_count x { chunk u64 | len u32 | crc u32 }
//
// Chunk i covers file bytes [data_begin + i*chunk_size, .. + chunk_size);
// an entry's `len` is the summed extent within the chunk (the tail chunk is
// shorter than chunk_size). The table is sparse: only summed chunks appear.
//
// Commit discipline mirrors the header journal: write the table, sync,
// then write the single CRC'd slot (the commit point), sync. A torn update
// fails the slot or table CRC and simply degrades every chunk to
// "unsummed" — a torn sidecar can never claim valid sums. `flags` bit 0 is
// the OPEN marker: a writable session commits it set before mutating data,
// and clears it only in the final flush at Close. A crash mid-session
// therefore leaves the sidecar open, and later readers distrust the (now
// possibly stale) sums instead of flagging freshly written data as corrupt.
//
// Verify-on-read (VerifyReadRange) recomputes the CRC of every committed,
// non-dirty chunk a physical read touches, re-reading neighbouring bytes
// through the caller-supplied raw-read callback. A mismatch is retried
// (healing transient read-side flips) before surfacing kDataCorrupt; the
// sticky at-rest case keeps mismatching and is reported, never returned
// silently. All of this is armed-only: with PNC_SUMS=0 no sidecar is
// created, no verification runs, and runs are bit-identical to a build
// without this module.
#pragma once

#include <functional>
#include <map>
#include <set>
#include <string>
#include <vector>

#include "format/commit.hpp"
#include "util/bytes.hpp"
#include "util/status.hpp"

namespace ncformat {

/// The sidecar path for a dataset path.
[[nodiscard]] std::string SumsPath(const std::string& path);

/// PNC_SUMS gate (default on; "0" disables the whole subsystem).
[[nodiscard]] bool SumsEnabled();

/// Chunk size: PNC_SUM_CHUNK bytes, default 64 KiB, clamped to
/// [4 KiB, 16 MiB]. 64 KiB keeps the sidecar tiny (16 B per 64 KiB of
/// data, 0.02%) while bounding the heal re-read amplification of a
/// one-byte access to one chunk.
[[nodiscard]] std::uint64_t SumChunkSize();

constexpr std::uint64_t kSumsMagicLen = 8;
constexpr std::uint64_t kSumsSlotOffset = 8;
constexpr std::uint64_t kSumsSlotSize = 32;
constexpr std::uint64_t kSumsTableOffset = kSumsSlotOffset + kSumsSlotSize;
constexpr std::uint32_t kSumsFlagOpen = 1u;

/// One committed chunk checksum: `len` bytes from the chunk start.
struct ChunkSum {
  std::uint32_t len = 0;
  std::uint32_t crc = 0;
  friend bool operator==(const ChunkSum&, const ChunkSum&) = default;
};

/// The in-memory chunk map one session (rank) maintains: committed entries
/// plus the set of chunks this rank has dirtied since the last flush.
/// Dirty chunks are exempt from verification (their committed sum is
/// stale by construction) and are exactly the set a flush must recompute.
class ChunkSumMap {
 public:
  void SetGeometry(std::uint64_t chunk_size, std::uint64_t data_begin);
  [[nodiscard]] std::uint64_t chunk_size() const { return chunk_size_; }
  [[nodiscard]] std::uint64_t data_begin() const { return data_begin_; }

  /// File offset of chunk `c`'s first byte.
  [[nodiscard]] std::uint64_t ChunkStart(std::uint64_t c) const {
    return data_begin_ + c * chunk_size_;
  }
  /// Chunk index covering file offset `off` (must be >= data_begin).
  [[nodiscard]] std::uint64_t ChunkOf(std::uint64_t off) const {
    return (off - data_begin_) / chunk_size_;
  }

  [[nodiscard]] bool Lookup(std::uint64_t chunk, ChunkSum* out) const;
  void Set(std::uint64_t chunk, ChunkSum sum);
  [[nodiscard]] const std::map<std::uint64_t, ChunkSum>& entries() const {
    return entries_;
  }
  [[nodiscard]] bool empty() const { return entries_.empty(); }
  /// Drop all entries and dirty marks (used when the data region moves
  /// under a relayout — every old sum is meaningless at the new offsets).
  void Clear();

  /// Mark every chunk overlapping file bytes [offset, offset+len) dirty.
  /// Bytes below data_begin (header writes) are ignored.
  void MarkDirtyRange(std::uint64_t offset, std::uint64_t len);
  [[nodiscard]] bool IsDirty(std::uint64_t chunk) const {
    return dirty_.count(chunk) != 0;
  }
  [[nodiscard]] const std::set<std::uint64_t>& dirty() const { return dirty_; }
  void MarkDirtyChunk(std::uint64_t chunk) { dirty_.insert(chunk); }
  void ClearDirty() { dirty_.clear(); }

  /// Serialize / parse the table region (geometry + sparse entries).
  [[nodiscard]] std::vector<std::byte> EncodeTable() const;
  [[nodiscard]] static pnc::Result<ChunkSumMap> DecodeTable(
      pnc::ConstByteSpan table);

 private:
  std::uint64_t chunk_size_ = 0;
  std::uint64_t data_begin_ = 0;
  std::map<std::uint64_t, ChunkSum> entries_;
  std::set<std::uint64_t> dirty_;
};

/// The committed slot state a writer threads through successive commits.
struct SumsState {
  std::uint64_t seq = 0;
  bool open = false;
};

/// (Re)initialize a sidecar: magic + zeroed slot. Called at dataset
/// creation so a stale sidecar from a previous file at the same path can
/// never be replayed.
[[nodiscard]] pnc::Status FormatSums(CommitIo& io);

/// Durably commit the map: table write, sync, slot write (the commit
/// point), sync. `open` set leaves the session-open marker in place.
[[nodiscard]] pnc::Status CommitSums(CommitIo& io, const ChunkSumMap& map,
                                     bool open, SumsState* state);

/// A loaded sidecar. `trusted` is false when the sidecar is missing,
/// torn, or was left open by a crashed session — the map is then empty
/// and every chunk is "unsummed" (verification quietly off, never a
/// false corruption verdict).
struct LoadedSums {
  ChunkSumMap map;
  SumsState state;
  bool trusted = false;
};

/// Parse the sidecar. A CRC-invalid slot/table is re-read up to
/// `reread_attempts` times (a transient read-side flip of the sidecar
/// itself must not silently disable verification) before degrading to
/// untrusted. Only I/O errors are returned as bad status.
[[nodiscard]] pnc::Result<LoadedSums> LoadSums(CommitIo& io,
                                               int reread_attempts = 4);

/// Raw byte reader for verification re-reads: must bypass verification
/// (no recursion) but retain the caller's retry/cost discipline.
using RawRead =
    std::function<pnc::Status(std::uint64_t offset, pnc::ByteSpan out)>;

/// Verification telemetry, accumulated across calls by the owner.
struct VerifyStats {
  std::uint64_t chunks_verified = 0;
  std::uint64_t mismatches = 0;
  std::uint64_t healed_retries = 0;
};

/// Verify the freshly read buffer `data` (file bytes [offset,
/// offset+len)) against every committed, non-dirty chunk it overlaps.
/// Chunk bytes outside the buffer are fetched through `raw`. On CRC
/// mismatch the whole chunk is re-read up to `heal_attempts` times; a
/// clean re-read is spliced back into `data` (the read healed), a chunk
/// still mismatching returns kDataCorrupt. `t_ns` timestamps the
/// flight-recorder event on the corrupt path. Counters are recorded via
/// the iostat macros; `stats` (optional) additionally accumulates them
/// for the caller.
[[nodiscard]] pnc::Status VerifyReadRange(const ChunkSumMap& map,
                                          std::uint64_t offset,
                                          pnc::ByteSpan data,
                                          std::uint64_t file_size,
                                          const RawRead& raw,
                                          int heal_attempts, double t_ns,
                                          VerifyStats* stats);

/// Offline scrub verdict for one chunk-sized piece of the data region.
enum class ChunkVerdict {
  kClean,    ///< committed sum present and matches the bytes
  kCorrupt,  ///< committed sum present and does NOT match
  kUnsummed, ///< no trustworthy sum covers this chunk
};

struct ScrubReport {
  bool trusted = false;  ///< sidecar had a committed, closed, valid table
  std::uint64_t clean = 0;
  std::uint64_t corrupt = 0;
  std::uint64_t unsummed = 0;
  /// Chunk indices that failed verification (capped at 64 for reporting).
  std::vector<std::uint64_t> corrupt_chunks;
};

/// Walk [map.data_begin, file_size) chunk by chunk, recompute every CRC
/// through `raw`, and classify. `map` is typically LoadSums().map; an
/// untrusted load yields an all-unsummed report.
[[nodiscard]] pnc::Result<ScrubReport> ScrubData(const ChunkSumMap& map,
                                                 bool trusted,
                                                 std::uint64_t file_size,
                                                 const RawRead& raw);

/// Rebuild the map from the current file bytes: recompute every chunk of
/// [data_begin, file_size) and commit the result closed (open=0). The
/// caller vouches for the data (e.g. it still passes compare-level ground
/// truth); after this the current bytes are the integrity baseline.
[[nodiscard]] pnc::Status RebuildSums(CommitIo& io, std::uint64_t chunk_size,
                                      std::uint64_t data_begin,
                                      std::uint64_t file_size,
                                      const RawRead& raw, SumsState* state);

}  // namespace ncformat
