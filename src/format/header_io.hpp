// Reading a netCDF header of unknown length from storage.
//
// The header's encoded length is only known after parsing it, so readers
// fetch a prefix, attempt a decode, and geometrically grow the prefix while
// the decoder reports truncation. Shared by the serial library and by the
// PnetCDF root process ("let the root process fetch the file header,
// broadcast it to all processes", paper §4.2.1).
#pragma once

#include <functional>

#include "format/header.hpp"

namespace ncformat {

/// read_at(offset, out) must fill `out` from the file (zero-filling past
/// EOF) or return the storage error. `file_size` bounds the growth.
inline pnc::Result<Header> ReadHeader(
    std::uint64_t file_size,
    const std::function<pnc::Status(std::uint64_t, pnc::ByteSpan)>& read_at) {
  std::uint64_t try_size = 8 * 1024;
  for (;;) {
    const std::uint64_t n = std::min(try_size, file_size);
    std::vector<std::byte> buf(n);
    PNC_RETURN_IF_ERROR(read_at(0, buf));
    auto r = Header::Decode(buf);
    if (r.ok()) return r;
    if (r.status().code() != pnc::Err::kTrunc || n >= file_size)
      return r.status();
    try_size *= 4;
  }
}

}  // namespace ncformat
