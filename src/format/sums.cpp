#include "format/sums.hpp"

#include <algorithm>
#include <array>
#include <cstring>

#include "iostat/events.hpp"
#include "iostat/iostat.hpp"
#include "util/crc32.hpp"
#include "util/env.hpp"

namespace ncformat {

namespace {

constexpr char kSumsMagic[kSumsMagicLen] = {'N', 'C', 'S', 'M',
                                            '0', '1', '\0', '\0'};

void PutU32(std::byte* p, std::uint32_t v) {
  for (int i = 0; i < 4; ++i)
    p[i] = static_cast<std::byte>((v >> (24 - 8 * i)) & 0xFF);
}
void PutU64(std::byte* p, std::uint64_t v) {
  for (int i = 0; i < 8; ++i)
    p[i] = static_cast<std::byte>((v >> (56 - 8 * i)) & 0xFF);
}
std::uint32_t GetU32(const std::byte* p) {
  std::uint32_t v = 0;
  for (int i = 0; i < 4; ++i) v = (v << 8) | std::to_integer<std::uint32_t>(p[i]);
  return v;
}
std::uint64_t GetU64(const std::byte* p) {
  std::uint64_t v = 0;
  for (int i = 0; i < 8; ++i) v = (v << 8) | std::to_integer<std::uint64_t>(p[i]);
  return v;
}

/// The raw slot contents (before trust decisions).
struct Slot {
  std::uint64_t seq = 0;
  std::uint64_t table_len = 0;
  std::uint32_t table_crc = 0;
  std::uint32_t flags = 0;
};

std::array<std::byte, kSumsSlotSize> EncodeSlot(const Slot& s) {
  std::array<std::byte, kSumsSlotSize> b{};
  PutU64(b.data(), s.seq);
  PutU64(b.data() + 8, s.table_len);
  PutU32(b.data() + 16, s.table_crc);
  PutU32(b.data() + 20, s.flags);
  PutU32(b.data() + 24, 0);
  PutU32(b.data() + 28, pnc::Crc32(pnc::ConstByteSpan(b.data(), 28)));
  return b;
}

/// nullopt = slot torn or never written.
std::optional<Slot> DecodeSlot(pnc::ConstByteSpan b) {
  if (b.size() < kSumsSlotSize) return std::nullopt;
  if (GetU32(b.data() + 28) != pnc::Crc32(b.first(28))) return std::nullopt;
  Slot s;
  s.seq = GetU64(b.data());
  s.table_len = GetU64(b.data() + 8);
  s.table_crc = GetU32(b.data() + 16);
  s.flags = GetU32(b.data() + 20);
  if (s.seq == 0) return std::nullopt;  // formatted, never committed
  return s;
}

}  // namespace

std::string SumsPath(const std::string& path) { return path + ".ncsum"; }

bool SumsEnabled() { return pnc::util::EnvInt("PNC_SUMS", 1) != 0; }

std::uint64_t SumChunkSize() {
  using pnc::operator""_KiB;
  using pnc::operator""_MiB;
  const std::int64_t v =
      pnc::util::EnvInt("PNC_SUM_CHUNK", static_cast<std::int64_t>(64_KiB));
  return std::clamp<std::uint64_t>(
      v <= 0 ? 64_KiB : static_cast<std::uint64_t>(v), 4_KiB, 16_MiB);
}

// ------------------------------------------------------------- ChunkSumMap

void ChunkSumMap::SetGeometry(std::uint64_t chunk_size,
                              std::uint64_t data_begin) {
  chunk_size_ = chunk_size;
  data_begin_ = data_begin;
}

bool ChunkSumMap::Lookup(std::uint64_t chunk, ChunkSum* out) const {
  auto it = entries_.find(chunk);
  if (it == entries_.end()) return false;
  *out = it->second;
  return true;
}

void ChunkSumMap::Set(std::uint64_t chunk, ChunkSum sum) {
  entries_[chunk] = sum;
}

void ChunkSumMap::Clear() {
  entries_.clear();
  dirty_.clear();
}

void ChunkSumMap::MarkDirtyRange(std::uint64_t offset, std::uint64_t len) {
  if (chunk_size_ == 0 || len == 0) return;
  const std::uint64_t end = offset + len;
  if (end <= data_begin_) return;  // header-region write
  const std::uint64_t begin = std::max(offset, data_begin_);
  for (std::uint64_t c = ChunkOf(begin); c <= ChunkOf(end - 1); ++c)
    dirty_.insert(c);
}

std::vector<std::byte> ChunkSumMap::EncodeTable() const {
  std::vector<std::byte> b(24 + 16 * entries_.size());
  PutU64(b.data(), chunk_size_);
  PutU64(b.data() + 8, data_begin_);
  PutU64(b.data() + 16, entries_.size());
  std::size_t off = 24;
  for (const auto& [chunk, sum] : entries_) {
    PutU64(b.data() + off, chunk);
    PutU32(b.data() + off + 8, sum.len);
    PutU32(b.data() + off + 12, sum.crc);
    off += 16;
  }
  return b;
}

pnc::Result<ChunkSumMap> ChunkSumMap::DecodeTable(pnc::ConstByteSpan table) {
  if (table.size() < 24)
    return pnc::Status(pnc::Err::kNotNc, "sum table truncated");
  ChunkSumMap m;
  m.chunk_size_ = GetU64(table.data());
  m.data_begin_ = GetU64(table.data() + 8);
  const std::uint64_t n = GetU64(table.data() + 16);
  if (m.chunk_size_ == 0 || table.size() < 24 + 16 * n)
    return pnc::Status(pnc::Err::kNotNc, "sum table malformed");
  for (std::uint64_t i = 0; i < n; ++i) {
    const std::byte* p = table.data() + 24 + 16 * i;
    ChunkSum s;
    s.len = GetU32(p + 8);
    s.crc = GetU32(p + 12);
    m.entries_[GetU64(p)] = s;
  }
  return m;
}

// ----------------------------------------------------------- sidecar I/O

pnc::Status FormatSums(CommitIo& io) {
  std::vector<std::byte> prefix(kSumsTableOffset, std::byte{0});
  std::memcpy(prefix.data(), kSumsMagic, kSumsMagicLen);
  if (auto st = io.Write(0, prefix); !st.ok()) return st;
  return io.Sync();
}

pnc::Status CommitSums(CommitIo& io, const ChunkSumMap& map, bool open,
                       SumsState* state) {
  const std::vector<std::byte> table = map.EncodeTable();
  if (auto st = io.Write(kSumsTableOffset, table); !st.ok()) return st;
  if (auto st = io.Sync(); !st.ok()) return st;
  Slot s;
  s.seq = state->seq + 1;
  s.table_len = table.size();
  s.table_crc = pnc::Crc32(table);
  s.flags = open ? kSumsFlagOpen : 0;
  const auto slot = EncodeSlot(s);
  if (auto st = io.Write(kSumsSlotOffset, slot); !st.ok()) return st;
  if (auto st = io.Sync(); !st.ok()) return st;
  state->seq = s.seq;
  state->open = open;
  return pnc::Status::Ok();
}

pnc::Result<LoadedSums> LoadSums(CommitIo& io, int reread_attempts) {
  LoadedSums out;
  if (io.Size() < kSumsTableOffset) return out;  // absent / never formatted
  // A CRC failure may be a transient flip of the *sidecar read itself*;
  // re-read before giving up, so a flaky medium degrades to untrusted only
  // when the damage is persistent.
  for (int attempt = 0; attempt < std::max(1, reread_attempts); ++attempt) {
    std::array<std::byte, kSumsTableOffset> head{};
    if (auto st = io.Read(0, head); !st.ok()) return st;
    if (std::memcmp(head.data(), kSumsMagic, kSumsMagicLen) != 0)
      continue;  // not a sidecar — or a flipped magic read; retry
    const auto slot =
        DecodeSlot(pnc::ConstByteSpan(head.data() + kSumsSlotOffset,
                                      kSumsSlotSize));
    if (!slot.has_value()) continue;  // torn or never committed
    std::vector<std::byte> table(slot->table_len);
    if (auto st = io.Read(kSumsTableOffset, table); !st.ok()) return st;
    if (pnc::Crc32(table) != slot->table_crc) continue;  // torn table
    auto m = ChunkSumMap::DecodeTable(table);
    if (!m.ok()) continue;
    out.map = std::move(m).value();
    out.state.seq = slot->seq;
    out.state.open = (slot->flags & kSumsFlagOpen) != 0;
    // An open sidecar is a crashed writable session: its sums may be
    // stale against data written after the last flush. Load the map (the
    // geometry is still right) but never trust it for verification.
    out.trusted = !out.state.open;
    return out;
  }
  return LoadedSums{};  // persistent damage: every chunk unsummed
}

// ------------------------------------------------------- verify-on-read

namespace {

/// Assemble the summed extent of chunk `c` into `buf`: overlap bytes come
/// from the caller's freshly read `data`, the remainder through `raw`.
pnc::Status AssembleChunk(const ChunkSumMap& map, std::uint64_t c,
                          std::uint64_t clen, std::uint64_t offset,
                          pnc::ByteSpan data, const RawRead& raw,
                          pnc::ByteSpan buf) {
  const std::uint64_t cstart = map.ChunkStart(c);
  const std::uint64_t cend = cstart + clen;
  const std::uint64_t ov_begin = std::max(cstart, offset);
  const std::uint64_t ov_end = std::min(cend, offset + data.size());
  if (ov_begin > cstart) {
    if (auto st = raw(cstart, buf.first(ov_begin - cstart)); !st.ok())
      return st;
  }
  if (ov_end > ov_begin)
    std::memcpy(buf.data() + (ov_begin - cstart), data.data() +
                (ov_begin - offset), ov_end - ov_begin);
  if (cend > ov_end) {
    if (auto st = raw(ov_end, buf.subspan(ov_end - cstart)); !st.ok())
      return st;
  }
  return pnc::Status::Ok();
}

}  // namespace

pnc::Status VerifyReadRange(const ChunkSumMap& map, std::uint64_t offset,
                            pnc::ByteSpan data, std::uint64_t file_size,
                            const RawRead& raw, int heal_attempts,
                            double t_ns, VerifyStats* stats) {
  if (map.chunk_size() == 0 || map.empty() || data.empty())
    return pnc::Status::Ok();
  const std::uint64_t end = offset + data.size();
  if (end <= map.data_begin()) return pnc::Status::Ok();
  const std::uint64_t begin = std::max(offset, map.data_begin());
  std::vector<std::byte> chunk;
  for (std::uint64_t c = map.ChunkOf(begin); c <= map.ChunkOf(end - 1); ++c) {
    ChunkSum sum;
    if (!map.Lookup(c, &sum) || map.IsDirty(c)) continue;
    const std::uint64_t cstart = map.ChunkStart(c);
    // The summed extent must still exist in full; a shorter file means the
    // sum covers bytes that are gone (treat as unsummed, not corrupt).
    if (cstart + sum.len > file_size) continue;
    if (cstart + sum.len <= offset || cstart >= end)
      continue;  // accessed bytes lie beyond the summed extent
    chunk.resize(sum.len);
    if (auto st = AssembleChunk(map, c, sum.len, offset, data, raw,
                                pnc::ByteSpan(chunk));
        !st.ok())
      return st;
    PNC_IOSTAT_ADD(kNcSumChunksVerified, 1);
    if (stats != nullptr) ++stats->chunks_verified;
    if (pnc::Crc32(chunk) == sum.crc) continue;
    PNC_IOSTAT_ADD(kNcSumMismatch, 1);
    if (stats != nullptr) ++stats->mismatches;
    // Mismatch: re-read the whole chunk. A transient read-side flip (of
    // the original read *or* of the assembly reads above) heals here; an
    // at-rest flip keeps mismatching and surfaces as kDataCorrupt.
    bool healed = false;
    for (int a = 0; a < heal_attempts && !healed; ++a) {
      if (auto st = raw(cstart, pnc::ByteSpan(chunk)); !st.ok()) return st;
      if (pnc::Crc32(chunk) != sum.crc) continue;
      const std::uint64_t ov_begin = std::max(cstart, offset);
      const std::uint64_t ov_end = std::min(cstart + sum.len, end);
      if (ov_end > ov_begin)
        std::memcpy(data.data() + (ov_begin - offset),
                    chunk.data() + (ov_begin - cstart), ov_end - ov_begin);
      PNC_IOSTAT_ADD(kNcSumHealedRetries, 1);
      if (stats != nullptr) ++stats->healed_retries;
      healed = true;
    }
    if (!healed) {
      PNC_IOSTAT_EVENT(kDataCorrupt, t_ns, 0, /*a0=*/c,
                       /*a1=*/static_cast<std::uint64_t>(heal_attempts),
                       nullptr);
      return pnc::Status(pnc::Err::kDataCorrupt,
                         "chunk " + std::to_string(c) +
                             " checksum mismatch persisted across " +
                             std::to_string(heal_attempts) + " re-reads");
    }
  }
  return pnc::Status::Ok();
}

// --------------------------------------------------------- offline scrub

pnc::Result<ScrubReport> ScrubData(const ChunkSumMap& map, bool trusted,
                                   std::uint64_t file_size,
                                   const RawRead& raw) {
  ScrubReport rep;
  rep.trusted = trusted;
  if (map.chunk_size() == 0 || file_size <= map.data_begin()) return rep;
  const std::uint64_t nchunks =
      (file_size - map.data_begin() + map.chunk_size() - 1) / map.chunk_size();
  std::vector<std::byte> chunk;
  for (std::uint64_t c = 0; c < nchunks; ++c) {
    const std::uint64_t cstart = map.ChunkStart(c);
    const std::uint64_t clen = std::min(map.chunk_size(), file_size - cstart);
    ChunkSum sum;
    if (!trusted || !map.Lookup(c, &sum) || sum.len > clen) {
      ++rep.unsummed;
      continue;
    }
    chunk.resize(sum.len);
    if (auto st = raw(cstart, pnc::ByteSpan(chunk)); !st.ok()) return st;
    if (pnc::Crc32(chunk) == sum.crc) {
      ++rep.clean;
    } else {
      ++rep.corrupt;
      if (rep.corrupt_chunks.size() < 64) rep.corrupt_chunks.push_back(c);
    }
  }
  return rep;
}

pnc::Status RebuildSums(CommitIo& io, std::uint64_t chunk_size,
                        std::uint64_t data_begin, std::uint64_t file_size,
                        const RawRead& raw, SumsState* state) {
  ChunkSumMap map;
  map.SetGeometry(chunk_size, data_begin);
  std::vector<std::byte> chunk;
  for (std::uint64_t cstart = data_begin; cstart < file_size;
       cstart += chunk_size) {
    const std::uint64_t clen = std::min(chunk_size, file_size - cstart);
    chunk.resize(clen);
    if (auto st = raw(cstart, pnc::ByteSpan(chunk)); !st.ok()) return st;
    map.Set(map.ChunkOf(cstart),
            {static_cast<std::uint32_t>(clen), pnc::Crc32(chunk)});
  }
  if (auto st = FormatSums(io); !st.ok()) return st;
  SumsState fresh;
  if (auto st = CommitSums(io, map, /*open=*/false, &fresh); !st.ok())
    return st;
  *state = fresh;
  return pnc::Status::Ok();
}

}  // namespace ncformat
