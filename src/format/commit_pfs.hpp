// CommitIo adapter over a pfs::File (header-only; consumers link simpfs +
// simmpi themselves).
//
// Routes every journal/primary access through the fault-injected Try* path
// with the same bounded retry-with-backoff discipline as mpiio and the
// serial BufferedFile: short transfers resume from the reported count
// without consuming retry budget, transient errors back off exponentially
// (charged to the virtual clock), and an exhausted budget converts to a
// permanent error. Crash points therefore bite here exactly as they do on
// the data path — which is the whole point of committing through it.
#pragma once

#include <utility>

#include "format/commit.hpp"
#include "pfs/pfs.hpp"
#include "simmpi/clock.hpp"
#include "util/retry.hpp"

namespace ncformat {

class PfsCommitIo final : public CommitIo {
 public:
  PfsCommitIo(pfs::File file, simmpi::VirtualClock* clock, int rank = 0)
      : file_(std::move(file)), clock_(clock),
        retry_(pnc::util::ResolveRetryPolicy(rank)) {}

  pnc::Status Read(std::uint64_t offset, pnc::ByteSpan out) override {
    return RetryIo(/*is_write=*/false, offset, out.data(), out.size());
  }
  pnc::Status Write(std::uint64_t offset, pnc::ConstByteSpan data) override {
    return RetryIo(/*is_write=*/true, offset,
                   const_cast<std::byte*>(data.data()), data.size());
  }
  pnc::Status Sync() override {
    return pnc::util::RetrySyncWithBackoff(
        retry_, *clock_, [&] { return file_.TrySync(clock_->now()); },
        [&](int, double) { file_.RecordRetry(/*is_write=*/true); });
  }
  std::uint64_t Size() override { return file_.size(); }

 private:
  pnc::Status RetryIo(bool is_write, std::uint64_t offset, std::byte* data,
                      std::uint64_t len) {
    return pnc::util::RetryWithBackoff(
        retry_, *clock_, len,
        [&](std::uint64_t done) {
          return is_write
                     ? file_.TryWrite(
                           offset + done,
                           pnc::ConstByteSpan(data + done, len - done),
                           clock_->now())
                     : file_.TryRead(offset + done,
                                     pnc::ByteSpan(data + done, len - done),
                                     clock_->now());
        },
        [&](int, double) { file_.RecordRetry(is_write); });
  }

  pfs::File file_;
  simmpi::VirtualClock* clock_;
  pnc::util::RetryPolicy retry_;  ///< defaults + PNC_RETRY_* env + jitter
};

}  // namespace ncformat
