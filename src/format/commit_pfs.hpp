// CommitIo adapter over a pfs::File (header-only; consumers link simpfs +
// simmpi themselves).
//
// Routes every journal/primary access through the fault-injected Try* path
// with the same bounded retry-with-backoff discipline as mpiio and the
// serial BufferedFile: short transfers resume from the reported count
// without consuming retry budget, transient errors back off exponentially
// (charged to the virtual clock), and an exhausted budget converts to a
// permanent error. Crash points therefore bite here exactly as they do on
// the data path — which is the whole point of committing through it.
#pragma once

#include <utility>

#include "format/commit.hpp"
#include "pfs/pfs.hpp"
#include "simmpi/clock.hpp"

namespace ncformat {

class PfsCommitIo final : public CommitIo {
 public:
  PfsCommitIo(pfs::File file, simmpi::VirtualClock* clock)
      : file_(std::move(file)), clock_(clock) {}

  pnc::Status Read(std::uint64_t offset, pnc::ByteSpan out) override {
    return RetryIo(/*is_write=*/false, offset, out.data(), out.size());
  }
  pnc::Status Write(std::uint64_t offset, pnc::ConstByteSpan data) override {
    return RetryIo(/*is_write=*/true, offset,
                   const_cast<std::byte*>(data.data()), data.size());
  }
  pnc::Status Sync() override {
    double backoff = kRetryBackoffNs;
    for (int attempt = 0;; ++attempt) {
      const pfs::IoResult r = file_.TrySync(clock_->now());
      clock_->AdvanceTo(r.done_ns);
      if (r.ok()) return pnc::Status::Ok();
      if (r.status.code() != pnc::Err::kIoTransient || attempt >= kRetryMax)
        return r.status;
      file_.RecordRetry(/*is_write=*/true);
      clock_->Advance(backoff);
      backoff *= 2;
    }
  }
  std::uint64_t Size() override { return file_.size(); }

 private:
  static constexpr int kRetryMax = 4;
  static constexpr double kRetryBackoffNs = 1e6;

  pnc::Status RetryIo(bool is_write, std::uint64_t offset, std::byte* data,
                      std::uint64_t len) {
    if (len == 0) return pnc::Status::Ok();
    std::uint64_t done = 0;
    int attempt = 0;
    double backoff = kRetryBackoffNs;
    while (done < len) {
      pfs::IoResult r =
          is_write
              ? file_.TryWrite(offset + done,
                               pnc::ConstByteSpan(data + done, len - done),
                               clock_->now())
              : file_.TryRead(offset + done,
                              pnc::ByteSpan(data + done, len - done),
                              clock_->now());
      clock_->AdvanceTo(r.done_ns);
      if (r.ok()) {
        if (r.transferred == 0 && len > done) {
          // Defensive: a zero-byte success would loop forever.
          return pnc::Status(pnc::Err::kIo, "no progress");
        }
        done += r.transferred;
        attempt = 0;
        continue;
      }
      if (r.status.code() != pnc::Err::kIoTransient || attempt >= kRetryMax)
        return r.status;
      ++attempt;
      file_.RecordRetry(is_write);
      clock_->Advance(backoff);
      backoff *= 2;
    }
    return pnc::Status::Ok();
  }

  pfs::File file_;
  simmpi::VirtualClock* clock_;
};

}  // namespace ncformat
