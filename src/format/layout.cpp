#include "format/layout.hpp"

namespace ncformat {

std::uint64_t AccessElems(std::span<const std::uint64_t> count) {
  return pnc::ShapeProduct(count);
}

pnc::Status ValidateAccess(const Header& h, int varid,
                           std::span<const std::uint64_t> start,
                           std::span<const std::uint64_t> count,
                           std::span<const std::uint64_t> stride,
                           AccessKind kind) {
  if (varid < 0 || static_cast<std::size_t>(varid) >= h.vars.size())
    return pnc::Status(pnc::Err::kNotVar);
  const auto& v = h.vars[static_cast<std::size_t>(varid)];
  const std::size_t ndims = v.dimids.size();
  if (start.size() != ndims || count.size() != ndims ||
      (!stride.empty() && stride.size() != ndims))
    return pnc::Status(pnc::Err::kInvalidArg, "rank mismatch: " + v.name);

  const bool is_rec = h.IsRecordVar(varid);
  for (std::size_t d = 0; d < ndims; ++d) {
    const std::uint64_t st = stride.empty() ? 1 : stride[d];
    if (st == 0) return pnc::Status(pnc::Err::kStride, v.name);
    const bool growable = is_rec && d == 0 && kind == AccessKind::kWrite;
    const std::uint64_t bound =
        (is_rec && d == 0) ? h.numrecs
                           : h.dims[static_cast<std::size_t>(v.dimids[d])].len;
    if (growable) continue;  // the record dimension may grow on write
    if (count[d] == 0) continue;
    if (start[d] >= bound && !(start[d] == 0 && bound == 0))
      return pnc::Status(pnc::Err::kInvalidCoords, v.name);
    if (start[d] + (count[d] - 1) * st + 1 > bound)
      return pnc::Status(pnc::Err::kEdge, v.name);
  }
  return pnc::Status::Ok();
}

void AccessRegions(const Header& h, int varid,
                   std::span<const std::uint64_t> start,
                   std::span<const std::uint64_t> count,
                   std::span<const std::uint64_t> stride,
                   std::vector<pnc::Extent>& out) {
  const auto& v = h.vars[static_cast<std::size_t>(varid)];
  const std::size_t ndims = v.dimids.size();
  const std::uint64_t tsize = TypeSize(v.type);
  const bool is_rec = h.IsRecordVar(varid);

  auto stride_of = [&](std::size_t d) -> std::uint64_t {
    return stride.empty() ? 1 : stride[d];
  };

  // Scalar variable: one element at begin.
  if (ndims == 0) {
    out.push_back({v.begin, tsize});
    return;
  }
  for (std::size_t d = 0; d < ndims; ++d)
    if (count[d] == 0) return;

  // Element strides (in elements) of the in-record / in-variable array. For
  // record variables dimension 0 is handled via recsize below.
  const std::size_t first_inner = is_rec ? 1 : 0;
  std::vector<std::uint64_t> elem_stride(ndims, 1);
  for (std::size_t d = ndims - 1; d > first_inner; --d) {
    const auto& dim = h.dims[static_cast<std::size_t>(v.dimids[d])];
    elem_stride[d - 1] = elem_stride[d] * dim.len;
  }

  // Innermost dimension: contiguous rows only when its stride is 1 and it
  // is not the record dimension (records are interleaved, never contiguous;
  // the adjacent-extent coalescing below recovers the sole-record-variable
  // special case where records do end up back to back).
  const bool rec_inner = is_rec && ndims == 1;
  const bool contig_row = !rec_inner && stride_of(ndims - 1) == 1;
  const std::uint64_t row_elems = contig_row ? count[ndims - 1] : 1;
  const std::uint64_t row_len = row_elems * tsize;

  // Iterate the remaining index space with an odometer.
  std::vector<std::uint64_t> idx(ndims, 0);
  const std::size_t last_odo = contig_row ? ndims - 1 : ndims;
  std::uint64_t rows = 1;
  for (std::size_t d = 0; d < last_odo; ++d) rows *= count[d];

  out.reserve(out.size() + rows);
  for (std::uint64_t r = 0; r < rows; ++r) {
    std::uint64_t base;
    std::size_t d0;
    if (is_rec) {
      const std::uint64_t rec = start[0] + idx[0] * stride_of(0);
      base = v.begin + rec * h.recsize();
      d0 = 1;
    } else {
      base = v.begin;
      d0 = 0;
    }
    std::uint64_t elem = 0;
    for (std::size_t d = d0; d < last_odo; ++d)
      elem += (start[d] + idx[d] * stride_of(d)) * elem_stride[d];
    if (contig_row) {
      if (ndims - 1 >= d0) elem += start[ndims - 1] * elem_stride[ndims - 1];
    } else {
      // ndims-1 participates in the odometer (strided innermost dim).
    }
    const std::uint64_t off = base + elem * tsize;
    if (!out.empty() && out.back().end() == off) {
      out.back().len += row_len;
    } else {
      out.push_back({off, row_len});
    }
    // Advance odometer over dims [d?]..last_odo-1 — note dimension 0 of a
    // record variable is part of the odometer too (records advance).
    for (std::size_t d = last_odo; d-- > 0;) {
      if (++idx[d] < count[d]) break;
      idx[d] = 0;
    }
  }
}

}  // namespace ncformat
