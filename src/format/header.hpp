// The netCDF classic file header: model, serialization, and layout.
//
// Paper §3.1: "Physically, the dataset file is divided into two parts: file
// header and array data. The header contains all information (or metadata)
// about dimensions, attributes, and variables except for the variable data
// itself." This module implements the CDF-1 (classic) and CDF-2 (64-bit
// offset) grammars:
//
//   header  := magic numrecs dim_list gatt_list var_list
//   magic   := 'C' 'D' 'F' version        (version 1 or 2)
//   dim     := name length                (length 0 marks the record dim)
//   attr    := name nc_type nelems values (values padded to 4 bytes)
//   var     := name ndims dimid* vatt_list nc_type vsize begin
//
// plus the layout rules that place fixed-size arrays contiguously after the
// header and interleave record variables' records after them (Figure 1).
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "format/types.hpp"
#include "util/bytes.hpp"
#include "util/status.hpp"
#include "util/xdr.hpp"

namespace ncformat {

/// Dimension length value marking the unlimited (record) dimension.
constexpr std::uint64_t kUnlimitedLen = 0;

/// Classic-format limits (from netcdf.h).
constexpr std::size_t kMaxName = 256;
constexpr std::size_t kMaxDims = 1024;
constexpr std::size_t kMaxVars = 8192;
constexpr std::size_t kMaxAttrs = 8192;
constexpr std::size_t kMaxVarDims = 1024;

struct Dim {
  std::string name;
  std::uint64_t len = 0;  ///< kUnlimitedLen (0) for the record dimension

  [[nodiscard]] bool is_unlimited() const { return len == kUnlimitedLen; }
};

/// An attribute: name + typed value array (held in host byte order; the
/// codec converts to/from the big-endian on-disk form).
struct Attr {
  std::string name;
  NcType type = NcType::kByte;
  std::vector<std::byte> data;  ///< host-order packed values

  [[nodiscard]] std::uint64_t nelems() const {
    return data.size() / TypeSize(type);
  }

  static Attr Text(std::string name, std::string_view value);
  template <typename T>
  static Attr Numeric(std::string name, NcType type, std::span<const T> values);

  [[nodiscard]] std::string AsText() const;
};

struct Var {
  std::string name;
  std::vector<std::int32_t> dimids;
  std::vector<Attr> attrs;
  NcType type = NcType::kByte;

  // Layout (computed by Header::ComputeLayout, read from file on open).
  std::uint64_t vsize = 0;  ///< bytes per variable (per record if record var)
  std::uint64_t begin = 0;  ///< file offset of first byte (of first record)

  [[nodiscard]] int FindAttr(std::string_view aname) const;
};

/// The complete in-memory header of an open dataset. Both the serial and
/// the parallel library keep one of these per open file ("a copy is cached
/// in local memory on each process", paper §4.2.1).
struct Header {
  int version = 2;  ///< 1 = CDF-1 (32-bit begins), 2 = CDF-2 (64-bit begins)
  std::uint64_t numrecs = 0;
  std::vector<Dim> dims;
  std::vector<Attr> gatts;
  std::vector<Var> vars;

  // ---- queries ----
  [[nodiscard]] int unlimited_dimid() const;
  [[nodiscard]] int FindDim(std::string_view name) const;
  [[nodiscard]] int FindVar(std::string_view name) const;
  [[nodiscard]] bool IsRecordVar(int varid) const;
  /// Dimension lengths of a variable, record dim included as current numrecs.
  [[nodiscard]] std::vector<std::uint64_t> VarShape(int varid) const;
  /// Elements per variable instance (per record for record variables).
  [[nodiscard]] std::uint64_t VarInstanceElems(int varid) const;
  /// Bytes between the starts of consecutive records (the interleaved record
  /// slab size; Figure 1). Includes the single-record-variable special case.
  [[nodiscard]] std::uint64_t recsize() const;
  /// File offset where the data section begins (== encoded header size).
  [[nodiscard]] std::uint64_t data_begin() const;
  /// Total file bytes implied by the header (fixed part + numrecs records).
  [[nodiscard]] std::uint64_t FileSize() const;

  // ---- validation & layout ----
  /// Check naming rules, dimension/variable constraints, and format limits.
  [[nodiscard]] pnc::Status Validate() const;
  /// Compute vsize/begin for every variable. `min_data_begin` reserves
  /// header space (used to avoid moving data when re-entering define mode
  /// grows the header). Fails if CDF-1 offsets overflow 32 bits.
  [[nodiscard]] pnc::Status ComputeLayout(std::uint64_t min_data_begin = 0);

  // ---- codec ----
  void Encode(std::vector<std::byte>& out) const;
  static pnc::Result<Header> Decode(pnc::ConstByteSpan in);

  /// Encoded size without materializing the encoding.
  [[nodiscard]] std::uint64_t EncodedSize() const;

  friend bool operator==(const Header& a, const Header& b);

 private:
  std::uint64_t data_begin_ = 0;
  std::uint64_t recsize_ = 0;
};

template <typename T>
Attr Attr::Numeric(std::string name, NcType type, std::span<const T> values) {
  Attr a;
  a.name = std::move(name);
  a.type = type;
  a.data.resize(values.size() * sizeof(T));
  std::memcpy(a.data.data(), values.data(), a.data.size());
  return a;
}

}  // namespace ncformat
