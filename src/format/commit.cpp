#include "format/commit.hpp"

#include <cstring>

#include "iostat/events.hpp"
#include "util/crc32.hpp"
#include "util/xdr.hpp"

namespace ncformat {

namespace {

constexpr std::byte kMagic[kJournalMagicLen] = {
    std::byte{'N'}, std::byte{'C'}, std::byte{'J'}, std::byte{'L'},
    std::byte{'0'}, std::byte{'1'}, std::byte{0},   std::byte{0}};

void PutU32(std::byte* p, std::uint32_t v) {
  const std::uint32_t big = pnc::xdr::ToBig(v);
  std::memcpy(p, &big, 4);
}
void PutU64(std::byte* p, std::uint64_t v) {
  const std::uint64_t big = pnc::xdr::ToBig(v);
  std::memcpy(p, &big, 8);
}
std::uint32_t GetU32(const std::byte* p) {
  std::uint32_t v;
  std::memcpy(&v, p, 4);
  return pnc::xdr::FromBig(v);
}
std::uint64_t GetU64(const std::byte* p) {
  std::uint64_t v;
  std::memcpy(&v, p, 8);
  return pnc::xdr::FromBig(v);
}

/// Encode a slot: rec_crc covers the first 28 bytes.
std::vector<std::byte> EncodeSlot(const CommitState& s) {
  std::vector<std::byte> b(kJournalSlotSize);
  PutU64(b.data(), s.seq);
  PutU64(b.data() + 8, s.header_len);
  PutU64(b.data() + 16, s.numrecs);
  PutU32(b.data() + 24, s.header_crc);
  PutU32(b.data() + 28, pnc::Crc32(pnc::ConstByteSpan(b.data(), 28)));
  return b;
}

/// Decode a slot if its CRC holds and it is non-empty (seq 0 = never used).
std::optional<CommitState> DecodeSlot(pnc::ConstByteSpan b, int slot) {
  if (b.size() < kJournalSlotSize) return std::nullopt;
  if (GetU32(b.data() + 28) != pnc::Crc32(b.first(28))) return std::nullopt;
  CommitState s;
  s.seq = GetU64(b.data());
  s.header_len = GetU64(b.data() + 8);
  s.numrecs = GetU64(b.data() + 16);
  s.header_crc = GetU32(b.data() + 24);
  s.slot = slot;
  if (s.seq == 0 || s.header_len == 0) return std::nullopt;
  return s;
}

/// Patch a header image's 4-byte numrecs field (offset 4).
void PatchNumrecs(std::vector<std::byte>& header, std::uint64_t numrecs) {
  if (header.size() >= 8)
    PutU32(header.data() + 4, static_cast<std::uint32_t>(numrecs));
}

}  // namespace

std::string JournalPath(const std::string& path) { return path + ".nccommit"; }

std::uint32_t HeaderCrc(pnc::ConstByteSpan header) {
  // numrecs (bytes [4, 8)) is committed through the slot, not the image:
  // zero it so a numrecs-only commit leaves the header CRC valid.
  std::uint32_t crc = 0;
  if (header.size() <= 4) return pnc::Crc32(header);
  crc = pnc::Crc32(header.first(4));
  static constexpr std::byte kZero[4] = {};
  const std::size_t z = std::min<std::size_t>(4, header.size() - 4);
  crc = pnc::Crc32(pnc::ConstByteSpan(kZero, z), crc);
  if (header.size() > 8) crc = pnc::Crc32(header.subspan(8), crc);
  return crc;
}

pnc::Status FormatJournal(CommitIo& journal) {
  std::vector<std::byte> prefix(kJournalShadowOffset);  // magic + zero slots
  std::memcpy(prefix.data(), kMagic, kJournalMagicLen);
  PNC_RETURN_IF_ERROR(journal.Write(0, prefix));
  return journal.Sync();
}

pnc::Result<std::optional<CommitState>> ReadCommitState(CommitIo& journal) {
  if (journal.Size() < kJournalShadowOffset)
    return pnc::Status(pnc::Err::kNotNc, "no commit journal");
  std::vector<std::byte> head(kJournalShadowOffset);
  PNC_RETURN_IF_ERROR(journal.Read(0, head));
  if (std::memcmp(head.data(), kMagic, kJournalMagicLen) != 0)
    return pnc::Status(pnc::Err::kNotNc, "bad commit journal magic");
  std::optional<CommitState> best;
  for (int slot = 0; slot < 2; ++slot) {
    auto s = DecodeSlot(
        pnc::ConstByteSpan(head.data() + kJournalSlotOffset[slot],
                           kJournalSlotSize),
        slot);
    if (s && (!best || s->seq > best->seq)) best = s;
  }
  return best;
}

pnc::Status CommitHeaderToJournal(CommitIo& journal, pnc::ConstByteSpan header,
                                  std::uint64_t numrecs,
                                  const std::optional<CommitState>& prev,
                                  CommitState* out) {
  CommitState next;
  next.seq = prev ? prev->seq + 1 : 1;
  next.slot = prev ? 1 - prev->slot : 0;
  next.header_len = header.size();
  next.numrecs = numrecs;
  next.header_crc = HeaderCrc(header);

  // Shadow first; it is worthless until the slot commits, so tearing it is
  // harmless (the previous commit's slot no longer references these bytes —
  // its committed image lives in the primary by now).
  PNC_RETURN_IF_ERROR(journal.Write(kJournalShadowOffset, header));
  PNC_RETURN_IF_ERROR(journal.Sync());
  // The commit point: one small slot write, CRC-sealed.
  PNC_RETURN_IF_ERROR(
      journal.Write(kJournalSlotOffset[next.slot], EncodeSlot(next)));
  PNC_RETURN_IF_ERROR(journal.Sync());
  if (out) *out = next;
  return pnc::Status::Ok();
}

pnc::Status CommitNumrecsToJournal(CommitIo& journal, const CommitState& cur,
                                   std::uint64_t numrecs, CommitState* out) {
  CommitState next = cur;
  next.seq = cur.seq + 1;
  next.slot = 1 - cur.slot;
  next.numrecs = numrecs;
  PNC_RETURN_IF_ERROR(
      journal.Write(kJournalSlotOffset[next.slot], EncodeSlot(next)));
  PNC_RETURN_IF_ERROR(journal.Sync());
  if (out) *out = next;
  return pnc::Status::Ok();
}

pnc::Result<VerifyReport> AnalyzeCommit(CommitIo& journal, CommitIo& primary) {
  VerifyReport r;

  auto state = ReadCommitState(journal);
  if (!state.ok()) {
    // No journal at all: a legacy / externally produced file. Classify by
    // whether the primary decodes.
    r.has_journal = false;
    std::vector<std::byte> probe(
        std::min<std::uint64_t>(primary.Size(), 64 * 1024));
    PNC_RETURN_IF_ERROR(primary.Read(0, probe));
    auto h = Header::Decode(probe);
    if (!h.ok() && h.status().code() == pnc::Err::kTrunc &&
        probe.size() < primary.Size()) {
      probe.resize(primary.Size());
      PNC_RETURN_IF_ERROR(primary.Read(0, probe));
      h = Header::Decode(probe);
    }
    r.state = h.ok() ? FileState::kClean : FileState::kCorrupt;
    r.detail = h.ok() ? "no journal; header decodes"
                      : "no journal; header does not decode: " +
                            h.status().message();
    return r;
  }
  r.has_journal = true;

  if (!state.value()) {
    // Journal formatted but nothing ever committed: a file that crashed
    // before its first enddef. There is no old state to return to.
    std::vector<std::byte> probe(
        std::min<std::uint64_t>(primary.Size(), 64 * 1024));
    PNC_RETURN_IF_ERROR(primary.Read(0, probe));
    const bool decodes = Header::Decode(probe).ok();
    r.state = decodes ? FileState::kClean : FileState::kCorrupt;
    r.detail = decodes ? "journal empty; header decodes"
                       : "no committed state (crashed before first commit)";
    return r;
  }

  const CommitState s = *state.value();
  r.has_commit = true;
  r.committed = s;

  // Does the primary already hold the committed image?
  std::vector<std::byte> prim(s.header_len);
  PNC_RETURN_IF_ERROR(primary.Read(0, prim));
  const bool prim_crc_ok = HeaderCrc(prim) == s.header_crc;
  const bool prim_numrecs_ok =
      prim.size() >= 8 &&
      GetU32(prim.data() + 4) == static_cast<std::uint32_t>(s.numrecs);
  if (prim_crc_ok && prim_numrecs_ok) {
    r.state = FileState::kClean;
    r.detail = "primary matches committed state (seq " +
               std::to_string(s.seq) + ")";
    return r;
  }

  // Reconstruct the committed header: prefer the shadow (a commit that never
  // reached the primary), else the primary body with the committed numrecs
  // patched back (a torn numrecs update, or a torn next shadow write).
  std::vector<std::byte> shadow(s.header_len);
  PNC_RETURN_IF_ERROR(journal.Read(kJournalShadowOffset, shadow));
  if (HeaderCrc(shadow) == s.header_crc) {
    PatchNumrecs(shadow, s.numrecs);
    r.committed_header = std::move(shadow);
    r.state = FileState::kTornRecoverable;
    r.detail = prim_crc_ok
                   ? "torn numrecs; committed count in slot (seq " +
                         std::to_string(s.seq) + ")"
                   : "primary torn; committed header in shadow (seq " +
                         std::to_string(s.seq) + ")";
    PNC_IOSTAT_EVENT_DUMP_HARD("crash-recovery");
    return r;
  }
  if (prim_crc_ok) {
    PatchNumrecs(prim, s.numrecs);
    r.committed_header = std::move(prim);
    r.state = FileState::kTornRecoverable;
    r.detail = "shadow torn by a later uncommitted write; primary body "
               "intact, committed numrecs patched (seq " +
               std::to_string(s.seq) + ")";
    PNC_IOSTAT_EVENT_DUMP_HARD("crash-recovery");
    return r;
  }

  r.state = FileState::kCorrupt;
  r.detail = "neither primary nor shadow matches the committed CRC (seq " +
             std::to_string(s.seq) + ")";
  PNC_IOSTAT_EVENT_DUMP_HARD("crash-recovery");
  return r;
}

pnc::Status RepairFromReport(const VerifyReport& report, CommitIo& primary) {
  switch (report.state) {
    case FileState::kClean:
      return pnc::Status::Ok();
    case FileState::kTornRecoverable:
      PNC_RETURN_IF_ERROR(
          primary.Write(0, pnc::ConstByteSpan(report.committed_header)));
      return primary.Sync();
    case FileState::kCorrupt:
    default:
      return pnc::Status(pnc::Err::kIo,
                         "unrecoverable: " + report.detail);
  }
}

}  // namespace ncformat
