// Atomic header/numrecs commit protocol (crash consistency).
//
// A netCDF writer mutates two tiny metadata regions in place: the header
// (offset 0) and the record count (`numrecs`, offset 4). A crash mid-write
// tears either one, and every open path then trusts the torn bytes. This
// module makes both updates atomic with a write-ordered sidecar journal,
// `<path>.nccommit`:
//
//   offset  0  magic "NCJL01\0\0"
//   offset  8  commit slot A (32 bytes)
//   offset 40  commit slot B (32 bytes)
//   offset 72  shadow header bytes
//
//   slot := seq u64 | header_len u64 | numrecs u64 | header_crc u32
//           | rec_crc u32                        (all big-endian)
//
// Header commit: write the shadow header, sync, then write one 32-byte slot
// (alternating A/B so the previous commit survives a torn slot write), sync,
// and only then update the primary file in place. Numrecs commit: the data
// writes land and sync first, then a new slot re-referencing the unchanged
// shadow carries the grown count, then the primary's 4-byte numrecs field.
// The commit point is the slot write — a single small write whose CRC makes
// tearing detectable. `header_crc` is computed with the numrecs field zeroed
// so numrecs-only commits do not invalidate it; the slot's `numrecs` is the
// authoritative record count.
//
// Recovery (open / ncverify): pick the valid slot with the highest seq. If
// the primary's header prefix matches `header_crc` and its numrecs field
// matches the slot, the file is clean. Otherwise the committed header is
// reconstructed from whichever of shadow/primary matches the CRC, with the
// slot's numrecs patched in — all-old or all-new, never a hybrid.
#pragma once

#include <optional>
#include <string>
#include <vector>

#include "format/header.hpp"
#include "util/bytes.hpp"
#include "util/status.hpp"

namespace ncformat {

/// Minimal storage interface the protocol drives. Implementations must route
/// through the fault-injected path (pfs Try*), typically with bounded retry;
/// `Read` zero-fills past EOF (pfs semantics).
class CommitIo {
 public:
  virtual ~CommitIo() = default;
  virtual pnc::Status Read(std::uint64_t offset, pnc::ByteSpan out) = 0;
  virtual pnc::Status Write(std::uint64_t offset, pnc::ConstByteSpan data) = 0;
  virtual pnc::Status Sync() = 0;
  virtual std::uint64_t Size() = 0;
};

constexpr std::uint64_t kJournalMagicLen = 8;
constexpr std::uint64_t kJournalSlotSize = 32;
constexpr std::uint64_t kJournalSlotOffset[2] = {8, 40};
constexpr std::uint64_t kJournalShadowOffset =
    kJournalMagicLen + 2 * kJournalSlotSize;  // 72

/// The sidecar journal's path for a dataset path.
[[nodiscard]] std::string JournalPath(const std::string& path);

/// CRC32 over an encoded header with the 4-byte numrecs field (offset 4)
/// treated as zero.
[[nodiscard]] std::uint32_t HeaderCrc(pnc::ConstByteSpan header);

/// A decoded, CRC-valid commit slot.
struct CommitState {
  std::uint64_t seq = 0;
  std::uint64_t header_len = 0;
  std::uint64_t numrecs = 0;
  std::uint32_t header_crc = 0;
  int slot = 0;  ///< which slot (0 = A, 1 = B) held this commit
};

/// (Re)initialize a journal: magic + both slots zeroed. Called at dataset
/// creation so a stale journal from a previous file at the same path can
/// never be replayed.
[[nodiscard]] pnc::Status FormatJournal(CommitIo& journal);

/// Parse the journal. nullopt = journal present but no committed state yet.
/// kNotNc if the magic is missing (not a journal / never formatted).
[[nodiscard]] pnc::Result<std::optional<CommitState>> ReadCommitState(
    CommitIo& journal);

/// Durably commit a full header image: shadow write, sync, slot write (the
/// commit point), sync. The caller updates the primary file afterwards.
/// `prev` is the current committed state (slot alternation + seq); `out`
/// receives the new state.
[[nodiscard]] pnc::Status CommitHeaderToJournal(
    CommitIo& journal, pnc::ConstByteSpan header, std::uint64_t numrecs,
    const std::optional<CommitState>& prev, CommitState* out);

/// Durably commit a new record count against the already-committed header.
/// The caller must have synced the record data writes first ("record-count
/// grows only after data writes land") and updates the primary's numrecs
/// field afterwards.
[[nodiscard]] pnc::Status CommitNumrecsToJournal(CommitIo& journal,
                                                 const CommitState& cur,
                                                 std::uint64_t numrecs,
                                                 CommitState* out);

/// Verification verdict for one dataset + journal pair.
enum class FileState {
  kClean,            ///< primary matches the committed state (or no journal
                     ///< and the primary decodes)
  kTornRecoverable,  ///< primary torn/stale, committed state reconstructible
  kCorrupt,          ///< no committed state matches anything on disk
};

struct VerifyReport {
  FileState state = FileState::kCorrupt;
  bool has_journal = false;
  bool has_commit = false;
  std::string detail;
  CommitState committed;
  /// The committed header bytes (slot numrecs patched in). Empty when there
  /// is nothing to restore from.
  std::vector<std::byte> committed_header;
};

/// Classify the primary file against its journal and reconstruct the
/// committed header if recovery is needed. Pure analysis: writes nothing.
[[nodiscard]] pnc::Result<VerifyReport> AnalyzeCommit(CommitIo& journal,
                                                      CommitIo& primary);

/// Roll the primary back/forward to the committed state in `report`
/// (rewrites the header prefix and syncs). No-op for kClean; fails for
/// kCorrupt.
[[nodiscard]] pnc::Status RepairFromReport(const VerifyReport& report,
                                           CommitIo& primary);

}  // namespace ncformat
