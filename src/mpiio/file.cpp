#include "mpiio/file.hpp"

#include <algorithm>
#include <cassert>
#include <cstring>
#include <mutex>

#include "iostat/events.hpp"
#include "iostat/iostat.hpp"
#include "iostat/pattern.hpp"
#include "iostat/timeline.hpp"
#include "mpiio/file_impl.hpp"

namespace mpiio {

pnc::Result<File> File::Open(simmpi::Comm comm, pfs::FileSystem& fs,
                             const std::string& path, unsigned mode,
                             const simmpi::Info& info) {
  Hints hints = Hints::Parse(info, comm.size(), fs.config().num_servers);

  // Tenant identity is minted here, at dataset open: hints override the
  // PNC_TENANT / PNC_QOS_* environment, and the resolved class is interned
  // with the file system so every pfs request this handle issues carries the
  // tenant (alongside the per-request ID). The default tenant (empty name)
  // registers as index 0 and changes nothing.
  const pfs::TenantClass tenant_cls =
      hints.ResolveTenant(info, pfs::TenantClassFromEnv());
  const int tenant = fs.RegisterTenant(tenant_cls);

  // Rank 0 performs the namespace operation; the result is broadcast so all
  // ranks agree before anyone touches the file (paper §4.2.1: dataset
  // functions manage interprocess communication and file synchronization).
  int err = 0;
  std::optional<pfs::File> handle;
  if (comm.rank() == 0) {
    pnc::Result<pfs::File> r =
        (mode & kCreate) ? fs.Create(path, (mode & kExcl) != 0)
                         : fs.Open(path);
    if (r.ok()) {
      handle = std::move(r).value();
      handle->SetTenant(tenant);
      // Charge one request round trip for the open/create itself — and let a
      // fault on it surface as an open failure instead of being swallowed.
      const pfs::IoResult s = handle->TrySync(comm.clock().now());
      comm.clock().AdvanceTo(s.done_ns);
      if (!s.ok()) err = s.status.raw();
    } else {
      err = r.status().raw();
    }
  }
  if (comm.FaultsArmed()) {
    // Error codes are negative, so a min-fold agreement with non-roots
    // contributing 0 doubles as a fault-tolerant broadcast of rank 0's
    // verdict. A comm with a dead member cannot produce a coherent
    // collective handle — callers reopen on a LiveSubsetFT comm instead.
    if (comm.SelfDead())
      return pnc::Status(pnc::Err::kRankFailed, "this rank crashed");
    const simmpi::AgreeOutcome o = comm.AgreeFT(err);
    if (o.any_dead)
      return pnc::Status(pnc::Err::kRankFailed, "a peer rank crashed");
    err = static_cast<int>(o.min_value);
  } else {
    comm.BcastValue(err, 0);
  }
  if (err != 0) return pnc::Status(static_cast<pnc::Err>(err), path);
  if (comm.rank() != 0) {
    auto r = fs.Open(path);
    if (!r.ok()) return r.status();
    handle = std::move(r).value();
    handle->SetTenant(tenant);
  }
  if (comm.FaultsArmed()) {
    const simmpi::AgreeOutcome o = comm.AgreeFT(0);
    if (o.any_dead)
      return pnc::Status(pnc::Err::kRankFailed, "a peer rank crashed");
  } else {
    comm.Barrier();
  }

  File f;
  f.impl_ = std::make_shared<Impl>(std::move(comm), &fs, std::move(*handle),
                                   mode, hints);
  return f;
}

pnc::Status File::SetView(std::uint64_t disp, const simmpi::Datatype& etype,
                          const simmpi::Datatype& filetype) {
  if (!impl_ || !impl_->open) return pnc::Status(pnc::Err::kBadId, "set_view");
  impl_->view = FileView(disp, etype, filetype);
  if (impl_->comm.FaultsArmed()) {
    const simmpi::AgreeOutcome o = impl_->comm.AgreeFT(0);
    if (o.any_dead)
      return pnc::Status(pnc::Err::kRankFailed, "a peer rank crashed");
  } else {
    impl_->comm.Barrier();
  }
  return pnc::Status::Ok();
}

pnc::Status File::SetViewLocal(std::uint64_t disp,
                               const simmpi::Datatype& etype,
                               const simmpi::Datatype& filetype) {
  if (!impl_ || !impl_->open) return pnc::Status(pnc::Err::kBadId, "set_view");
  impl_->view = FileView(disp, etype, filetype);
  return pnc::Status::Ok();
}

void File::ClearView() {
  if (impl_) impl_->view = FileView();
}

pnc::Status File::ReadAt(std::uint64_t offset, void* buf, std::uint64_t count,
                         const simmpi::Datatype& memtype) {
  return IndependentIo(offset, buf, count, memtype, /*is_write=*/false);
}

pnc::Status File::WriteAt(std::uint64_t offset, const void* buf,
                          std::uint64_t count, const simmpi::Datatype& memtype) {
  return IndependentIo(offset, const_cast<void*>(buf), count, memtype,
                       /*is_write=*/true);
}

pnc::Status File::ReadAtAll(std::uint64_t offset, void* buf,
                            std::uint64_t count,
                            const simmpi::Datatype& memtype) {
  return CollectiveIo(offset, buf, count, memtype, /*is_write=*/false);
}

pnc::Status File::WriteAtAll(std::uint64_t offset, const void* buf,
                             std::uint64_t count,
                             const simmpi::Datatype& memtype) {
  return CollectiveIo(offset, const_cast<void*>(buf), count, memtype,
                      /*is_write=*/true);
}

pnc::Status File::Sync() {
  if (!impl_ || !impl_->open) return pnc::Status(pnc::Err::kBadId, "sync");
  // Collective: rendezvous first so every rank issues its flush from the
  // same virtual instant, then flush, then agree on one status. The leading
  // rendezvous also makes the flushes' completion times independent of the
  // real-time order in which the rank threads reach the pfs server queue —
  // with a shared arrival time the queue delay is a deterministic function
  // of the request count, which is what lets single-writer benchmark
  // configurations produce byte-identical virtual-time results run to run
  // (see bench/suites.cpp).
  if (impl_->comm.FaultsArmed()) {
    // The agreement rounds double as the rendezvous: each synchronizes
    // survivor clocks to the latest arrival, and a death at any point turns
    // into kRankFailed on every survivor instead of a hang. Survivors still
    // flush their own data first.
    if (impl_->comm.SelfDead())
      return pnc::Status(pnc::Err::kRankFailed, "this rank crashed");
    (void)impl_->comm.AgreeFT(0);
    return AgreeStatus(impl_->comm, impl_->RetrySync());
  }
  impl_->comm.SyncClocksToMax();
  pnc::Status st = impl_->RetrySync();
  st = AgreeStatus(impl_->comm, st);
  impl_->comm.SyncClocksToMax();
  return st;
}

pnc::Status File::SyncLocal() {
  if (!impl_ || !impl_->open) return pnc::Status(pnc::Err::kBadId, "sync");
  return impl_->RetrySync();
}

pnc::Status File::SetSize(std::uint64_t size) {
  if (!impl_ || !impl_->open) return pnc::Status(pnc::Err::kBadId, "set_size");
  if (impl_->comm.rank() == 0) impl_->file.Truncate(size);
  if (impl_->comm.FaultsArmed()) {
    const simmpi::AgreeOutcome o = impl_->comm.AgreeFT(0);
    if (o.any_dead)
      return pnc::Status(pnc::Err::kRankFailed, "a peer rank crashed");
  } else {
    impl_->comm.Barrier();
  }
  return pnc::Status::Ok();
}

pnc::Result<std::uint64_t> File::GetSize() const {
  if (!impl_ || !impl_->open) return pnc::Status(pnc::Err::kBadId, "get_size");
  return impl_->file.size();
}

pnc::Status File::Close() {
  if (!impl_ || !impl_->open) return pnc::Status(pnc::Err::kBadId, "close");
  if (impl_->comm.FaultsArmed()) {
    // Survivors rendezvous through the agreement monitor (a dead member can
    // never arrive at a Barrier) and close their handles regardless of the
    // outcome; the status reports whether the group was whole.
    impl_->open = false;
    if (impl_->comm.SelfDead())
      return pnc::Status(pnc::Err::kRankFailed, "this rank crashed");
    const simmpi::AgreeOutcome o = impl_->comm.AgreeFT(0);
    return o.any_dead
               ? pnc::Status(pnc::Err::kRankFailed, "a peer rank crashed")
               : pnc::Status::Ok();
  }
  impl_->comm.Barrier();
  impl_->open = false;
  return pnc::Status::Ok();
}

const Hints& File::hints() const { return impl_->hints; }
simmpi::Comm& File::comm() { return impl_->comm; }
int File::tenant() const { return impl_ ? impl_->file.tenant() : 0; }

void File::AttachSums(ncformat::ChunkSumMap* sums, bool verify) {
  if (!impl_) return;
  impl_->sums = sums;
  impl_->sums_verify = verify && sums != nullptr;
}

// ------------------------------------------------------------ fault path

pnc::Status File::Impl::RetryIo(bool is_write, std::uint64_t off,
                                std::byte* data, std::uint64_t len) {
  pnc::Status st = RawIo(is_write, off, data, len);
  if (!st.ok() || sums == nullptr || len == 0) return st;
  if (is_write) {
    sums->MarkDirtyRange(off, len);
    return st;
  }
  if (!sums_verify) return st;
  return ncformat::VerifyReadRange(
      *sums, off, pnc::ByteSpan(data, len), file.size(),
      [this](std::uint64_t o, pnc::ByteSpan out) {
        return RawIo(/*is_write=*/false, o, out.data(), out.size());
      },
      std::max(1, retry.max_attempts), comm.clock().now(), nullptr);
}

pnc::Status File::Impl::RawIo(bool is_write, std::uint64_t off,
                              std::byte* data, std::uint64_t len) {
  auto& clk = comm.clock();
  return pnc::util::RetryWithBackoff(
      retry, clk, len,
      [&](std::uint64_t done) {
        const pfs::IoResult r =
            is_write
                ? file.TryWrite(off + done,
                                pnc::ConstByteSpan(data + done, len - done),
                                clk.now())
                : file.TryRead(off + done,
                               pnc::ByteSpan(data + done, len - done),
                               clk.now());
        if (r.ok()) {
          if (is_write)
            PNC_IOSTAT_ADD(kMpiioBytesWritten, r.transferred);
          else
            PNC_IOSTAT_ADD(kMpiioBytesRead, r.transferred);
        }
        return r;
      },
      [&](int attempt, double backoff) {
        PNC_IOSTAT_ADD(kMpiioRetries, 1);
        PNC_IOSTAT_TIMELINE_MARK(kRetries, clk.now(), 1);
        PNC_IOSTAT_EVENT(kRetry, clk.now(), backoff, is_write, attempt,
                         nullptr);
        file.RecordRetry(is_write);
      });
}

pnc::Status File::Impl::RetrySync() {
  auto& clk = comm.clock();
  return pnc::util::RetrySyncWithBackoff(
      retry, clk, [&] { return file.TrySync(clk.now()); },
      [&](int attempt, double backoff) {
        PNC_IOSTAT_TIMELINE_MARK(kRetries, clk.now(), 1);
        PNC_IOSTAT_EVENT(kRetry, clk.now(), backoff, 1, attempt, nullptr);
        file.RecordRetry(/*is_write=*/true);
      });
}

pnc::Status AgreeStatus(simmpi::Comm& comm, const pnc::Status& local) {
  if (comm.FaultsArmed()) {
    // Full failure agreement: the fold and the survivor set come from one
    // agreement round, so every survivor returns the identical status and a
    // peer's death outranks any I/O error.
    if (comm.SelfDead())
      return pnc::Status(pnc::Err::kRankFailed, "this rank crashed");
    const simmpi::AgreeOutcome o = comm.AgreeFT(local.raw());
    if (o.any_dead)
      return pnc::Status(pnc::Err::kRankFailed, "a peer rank crashed");
    if (o.min_value == 0) return pnc::Status::Ok();
    if (local.raw() == o.min_value) return local;
    return pnc::Status(static_cast<pnc::Err>(o.min_value),
                       "I/O failed on a peer rank");
  }
  int agreed = comm.AllreduceMin(local.raw());
  if (agreed == 0) return pnc::Status::Ok();
  if (local.raw() == agreed) return local;
  return pnc::Status(static_cast<pnc::Err>(agreed), "I/O failed on a peer rank");
}

// ------------------------------------------------------- independent path

pnc::Status File::IndependentIo(std::uint64_t offset_etypes, void* buf,
                                std::uint64_t count,
                                const simmpi::Datatype& memtype,
                                bool is_write) {
  if (!impl_ || !impl_->open) return pnc::Status(pnc::Err::kBadId, "io");
  if (is_write)
    PNC_IOSTAT_ADD(kMpiioIndepWrites, 1);
  else
    PNC_IOSTAT_ADD(kMpiioIndepReads, 1);
  auto& im = *impl_;
  const std::uint64_t bytes = count * memtype.size();
  PNC_IOSTAT_EVENT(kIndep, im.comm.clock().now(), 0, bytes, is_write,
                   nullptr);
  if (bytes == 0) return pnc::Status::Ok();
  if (buf == nullptr) return pnc::Status(pnc::Err::kNullBuf, "io");

  const std::uint64_t logical = offset_etypes * im.view.etype_size();
  std::vector<pnc::Extent> segs;
  im.view.MapRange(logical, bytes, segs);

  auto* base = static_cast<std::byte*>(buf);
  if (memtype.is_contiguous()) {
    return SievedTransfer(segs, base, is_write);
  }

  // Noncontiguous memory: stage through a packed buffer (cost charged).
  std::vector<std::byte> staging(bytes);
  auto& clk = im.comm.clock();
  if (is_write) {
    memtype.Pack(base, count, staging.data());
    clk.Advance(im.comm.cost().CopyCost(bytes));
    PNC_RETURN_IF_ERROR(SievedTransfer(segs, staging.data(), true));
  } else {
    PNC_RETURN_IF_ERROR(SievedTransfer(segs, staging.data(), false));
    memtype.Unpack(staging.data(), count, base);
    clk.Advance(im.comm.cost().CopyCost(bytes));
  }
  return pnc::Status::Ok();
}

pnc::Status File::SievedTransfer(const std::vector<pnc::Extent>& segments,
                                 std::byte* data, bool is_write) {
  auto& im = *impl_;
  auto& clk = im.comm.clock();
  auto& cost = im.comm.cost();
  clk.Advance(cost.sw_overhead_ns);
  if (segments.empty()) return pnc::Status::Ok();

  // Fast path: one contiguous request. (Both sieve counters advance by the
  // same amount on the non-sieving paths, so amplification stays 1.0.)
  if (segments.size() == 1) {
    const auto& s = segments[0];
    PNC_IOSTAT_ADD(kMpiioSieveBytesWanted, s.len);
    PNC_IOSTAT_ADD(kMpiioSieveBytesFile, s.len);
    PNC_IOSTAT_PATTERN_SIEVE(is_write, s.len, s.len, s.offset,
                             /*sieved=*/false);
    return im.RetryIo(is_write, s.offset, data, s.len);
  }

  const bool sieve = is_write ? im.hints.ds_write : im.hints.ds_read;
  if (!sieve) {
    // One file request per segment — the naive noncontiguous path the paper's
    // related work (data sieving) exists to avoid.
    std::uint64_t dpos = 0;
    for (const auto& s : segments) {
      PNC_IOSTAT_ADD(kMpiioSieveBytesWanted, s.len);
      PNC_IOSTAT_ADD(kMpiioSieveBytesFile, s.len);
      PNC_IOSTAT_PATTERN_SIEVE(is_write, s.len, s.len, s.offset,
                               /*sieved=*/false);
      PNC_RETURN_IF_ERROR(im.RetryIo(is_write, s.offset, data + dpos, s.len));
      dpos += s.len;
    }
    return pnc::Status::Ok();
  }

  // Data sieving: process the covering byte range in buffer-size windows;
  // each window costs one large request (plus one extra read for writes with
  // holes: read-modify-write).
  const std::uint64_t bufsize =
      is_write ? im.hints.ind_wr_buffer_size : im.hints.ind_rd_buffer_size;
  std::vector<std::byte> window(bufsize);

  std::size_t seg_idx = 0;     // first segment not fully consumed
  std::uint64_t seg_done = 0;  // bytes of segments[seg_idx] already handled
  std::uint64_t dpos = 0;      // cursor into packed data

  std::uint64_t wstart = segments.front().offset;
  const std::uint64_t end = segments.back().end();
  while (wstart < end && seg_idx < segments.size()) {
    // Skip any gap before the next segment so windows start on useful bytes.
    wstart = std::max(wstart, segments[seg_idx].offset + seg_done);
    const std::uint64_t wend = std::min(end, wstart + bufsize);

    // Collect the segment pieces that fall inside [wstart, wend).
    struct Piece {
      std::uint64_t file_off, len, data_off;
    };
    std::vector<Piece> pieces;
    std::uint64_t covered = 0;
    std::size_t i = seg_idx;
    std::uint64_t idone = seg_done;
    std::uint64_t idpos = dpos;
    std::uint64_t last = wstart;
    while (i < segments.size()) {
      const std::uint64_t s_off = segments[i].offset + idone;
      if (s_off >= wend) break;
      const std::uint64_t n = std::min(segments[i].len - idone, wend - s_off);
      pieces.push_back({s_off, n, idpos});
      covered += n;
      last = s_off + n;
      idpos += n;
      idone += n;
      if (idone == segments[i].len) {
        ++i;
        idone = 0;
      } else {
        break;  // window boundary split this segment
      }
    }
    const std::uint64_t span_start = wstart;
    const std::uint64_t span_len = last - wstart;
    if (span_len == 0) break;
    PNC_IOSTAT_ADD(kMpiioSieveBytesWanted, covered);
    PNC_IOSTAT_ADD(kMpiioSieveBytesFile, span_len);
    const bool holes = covered != span_len;
    // Window-level pattern sample: useful payload vs bytes at the file
    // (writes with holes pre-read the whole span, doubling the file bytes —
    // mirrors the counter accounting below).
    PNC_IOSTAT_PATTERN_SIEVE(is_write, covered,
                             is_write && holes ? 2 * span_len : span_len,
                             span_start, /*sieved=*/true);

    if (is_write) {
      // ROMIO takes a file lock around sieved writes: the read-modify-write
      // of the covering range must not interleave with another client's RMW
      // of an overlapping range, or updates are lost.
      std::unique_lock<std::mutex> rmw_lock;
      if (holes) {
        rmw_lock = im.file.LockForRmw();
        PNC_IOSTAT_ADD(kMpiioSieveBytesFile, span_len);  // RMW pre-read
        PNC_RETURN_IF_ERROR(
            im.RetryIo(/*is_write=*/false, span_start, window.data(), span_len));
      }
      for (const auto& p : pieces)
        std::memcpy(window.data() + (p.file_off - span_start), data + p.data_off,
                    p.len);
      clk.Advance(cost.CopyCost(covered));
      PNC_RETURN_IF_ERROR(
          im.RetryIo(/*is_write=*/true, span_start, window.data(), span_len));
    } else {
      PNC_RETURN_IF_ERROR(
          im.RetryIo(/*is_write=*/false, span_start, window.data(), span_len));
      for (const auto& p : pieces)
        std::memcpy(data + p.data_off, window.data() + (p.file_off - span_start),
                    p.len);
      clk.Advance(cost.CopyCost(covered));
    }

    seg_idx = i;
    seg_done = idone;
    dpos = idpos;
    wstart = wend;
  }
  return pnc::Status::Ok();
}

}  // namespace mpiio
