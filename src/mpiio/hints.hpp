// MPI-IO hint handling (ROMIO-compatible keys).
//
// Paper §4.1: "Traditional MPI-IO hints tune the MPI-IO implementation to
// the specific platform and expected low-level access pattern, such as
// enabling or disabling certain algorithms or adjusting internal buffer
// sizes and policies." These are the keys this implementation honors.
#pragma once

#include <algorithm>
#include <cstdint>
#include <string>

#include "pfs/sched.hpp"
#include "simmpi/info.hpp"

namespace mpiio {

struct Hints {
  // Collective buffering (two-phase I/O).
  std::uint64_t cb_buffer_size = 4ULL << 20;  ///< aggregator window size
  int cb_nodes = 0;           ///< number of aggregators; 0 = auto
  bool cb_read = true;        ///< romio_cb_read
  bool cb_write = true;       ///< romio_cb_write

  // Data sieving (independent noncontiguous access).
  bool ds_read = true;   ///< romio_ds_read
  bool ds_write = true;  ///< romio_ds_write
  std::uint64_t ind_rd_buffer_size = 4ULL << 20;
  std::uint64_t ind_wr_buffer_size = 512ULL << 10;

  // Fault handling (ROMIO retries interrupted POSIX transfers; we extend the
  // idea to the PFS's transient errors). A transient failure is retried up to
  // `retry_max` times with exponential backoff starting at
  // `retry_backoff_ns` virtual nanoseconds; when the budget is exhausted the
  // transient error is reported as a permanent pnc::Err::kIo.
  int retry_max = 4;                 ///< pnc_retry_max
  double retry_backoff_ns = 1e6;     ///< pnc_retry_backoff_ns

  // Tenant identity / QoS class (see pfs/sched.hpp). An empty tenant name
  // means the default tenant; the other fields are then ignored. The hint
  // path overrides the PNC_TENANT / PNC_QOS_* environment at File::Open.
  std::string tenant;                   ///< pnc_tenant
  double qos_weight = 1.0;              ///< pnc_qos_weight, clamped to
                                        ///< [TenantClass::kMinWeight, kMax]
  double qos_deadline_ns = 0.0;         ///< pnc_qos_deadline_ns, >= 0
  std::uint64_t qos_cap_bytes = 0;      ///< pnc_qos_cap_bytes, >= 0

  // Documented clamp bounds. Buffer-size hints are clamped into
  // [kMinBufferSize, kMaxBufferSize] — zero and negative values count as
  // below-minimum (a negative value must never wrap into a huge unsigned
  // size), and anything past 2 GiB is treated as a typo rather than an
  // allocation request. Retry counts clamp into [0, kMaxRetries]; backoffs
  // clamp at zero.
  static constexpr std::uint64_t kMinBufferSize = 4096;
  static constexpr std::uint64_t kMaxBufferSize = 2ULL << 30;
  static constexpr int kMaxRetries = 1000;

  /// Parse from an Info object; unknown keys are ignored (and remain
  /// available to higher layers), per the MPI hint contract.
  static Hints Parse(const simmpi::Info& info, int comm_size,
                     int num_io_servers) {
    Hints h;
    const auto buffer_size = [&info](const char* key, std::uint64_t def) {
      const std::int64_t v = info.GetInt(key, static_cast<std::int64_t>(def));
      if (v < static_cast<std::int64_t>(kMinBufferSize)) return kMinBufferSize;
      if (v > static_cast<std::int64_t>(kMaxBufferSize)) return kMaxBufferSize;
      return static_cast<std::uint64_t>(v);
    };
    h.cb_buffer_size = buffer_size("cb_buffer_size", h.cb_buffer_size);
    // ROMIO defaults cb_nodes to the number of distinct hosts; the closest
    // analogue here is one aggregator per I/O server, capped by comm size.
    h.cb_nodes = static_cast<int>(info.GetInt(
        "cb_nodes", std::min(comm_size, std::max(1, num_io_servers))));
    h.cb_nodes = std::clamp(h.cb_nodes, 1, comm_size);
    h.cb_read = info.GetFlag("romio_cb_read", h.cb_read);
    h.cb_write = info.GetFlag("romio_cb_write", h.cb_write);
    h.ds_read = info.GetFlag("romio_ds_read", h.ds_read);
    h.ds_write = info.GetFlag("romio_ds_write", h.ds_write);
    h.ind_rd_buffer_size =
        buffer_size("ind_rd_buffer_size", h.ind_rd_buffer_size);
    h.ind_wr_buffer_size =
        buffer_size("ind_wr_buffer_size", h.ind_wr_buffer_size);
    h.retry_max = std::clamp(
        static_cast<int>(info.GetInt("pnc_retry_max", h.retry_max)), 0,
        kMaxRetries);
    h.retry_backoff_ns = static_cast<double>(info.GetInt(
        "pnc_retry_backoff_ns", static_cast<std::int64_t>(h.retry_backoff_ns)));
    if (h.retry_backoff_ns < 0) h.retry_backoff_ns = 0;
    if (auto t = info.Get("pnc_tenant")) h.tenant = *t;
    // Doubles parse like GetInt: the whole value or the default (MPI
    // implementations ignore hints they cannot parse).
    const auto get_double = [&info](const char* key, double def) {
      const auto v = info.Get(key);
      if (!v) return def;
      try {
        std::size_t used = 0;
        const double d = std::stod(*v, &used);
        return used == v->size() ? d : def;
      } catch (...) {
        return def;
      }
    };
    h.qos_weight =
        std::clamp(get_double("pnc_qos_weight", h.qos_weight),
                   pfs::TenantClass::kMinWeight, pfs::TenantClass::kMaxWeight);
    h.qos_deadline_ns =
        std::max(0.0, get_double("pnc_qos_deadline_ns", h.qos_deadline_ns));
    h.qos_cap_bytes = static_cast<std::uint64_t>(std::max<std::int64_t>(
        0, info.GetInt("pnc_qos_cap_bytes",
                       static_cast<std::int64_t>(h.qos_cap_bytes))));
    return h;
  }

  /// The pfs tenant class this Hints object describes, merged over `env`
  /// (the PNC_TENANT/PNC_QOS_* identity): a hint present in the Info wins
  /// field by field; otherwise the environment's value stands.
  [[nodiscard]] pfs::TenantClass ResolveTenant(const simmpi::Info& info,
                                               pfs::TenantClass env) const {
    if (!tenant.empty()) env.name = tenant;
    if (info.Get("pnc_qos_weight")) env.weight = qos_weight;
    if (info.Get("pnc_qos_deadline_ns")) env.deadline_ns = qos_deadline_ns;
    if (info.Get("pnc_qos_cap_bytes")) env.max_outstanding_bytes = qos_cap_bytes;
    return env;
  }
};

}  // namespace mpiio
