// MPI-IO file access (the subset PnetCDF builds on).
//
// Implements the MPI-2 file model over the simulated parallel file system:
//   * collective open/close over a communicator,
//   * per-rank file views (set_view),
//   * independent read_at/write_at with ROMIO-style data sieving for
//     noncontiguous patterns,
//   * collective read_at_all/write_at_all with ROMIO-style two-phase I/O
//     (aggregators own contiguous file domains; data is exchanged with an
//     all-to-all and flushed in large contiguous requests).
//
// Offsets given to the data calls are in etype units relative to the current
// view, exactly as in MPI-2. Memory buffers are described by a simmpi
// Datatype (count, type), as in MPI; noncontiguous memory is packed/unpacked
// through a staging buffer with its copy cost charged to the virtual clock.
#pragma once

#include <memory>
#include <string>

#include "mpiio/hints.hpp"
#include "mpiio/view.hpp"
#include "pfs/pfs.hpp"
#include "simmpi/comm.hpp"
#include "simmpi/info.hpp"
#include "util/status.hpp"

namespace ncformat {
class ChunkSumMap;
}

namespace mpiio {

/// Open mode flags (subset of MPI_MODE_*).
enum Mode : unsigned {
  kRdOnly = 1u << 0,
  kWrOnly = 1u << 1,
  kRdWr = 1u << 2,
  kCreate = 1u << 3,
  kExcl = 1u << 4,
};

class File {
 public:
  /// Collective. All ranks of `comm` must call with identical arguments.
  static pnc::Result<File> Open(simmpi::Comm comm, pfs::FileSystem& fs,
                                const std::string& path, unsigned mode,
                                const simmpi::Info& info);

  File() = default;
  [[nodiscard]] bool valid() const { return impl_ != nullptr; }

  /// Collective: set this rank's file view. The etype and filetype may
  /// differ across ranks (that is the point); the call synchronizes like a
  /// barrier, as required for views changing under collective I/O.
  pnc::Status SetView(std::uint64_t disp, const simmpi::Datatype& etype,
                      const simmpi::Datatype& filetype);
  /// Non-collective view change, for layers that multiplex independent and
  /// collective access over one handle (PnetCDF opens a second, per-process
  /// MPI file handle for its independent data mode; this models that handle
  /// without a second open).
  pnc::Status SetViewLocal(std::uint64_t disp, const simmpi::Datatype& etype,
                           const simmpi::Datatype& filetype);
  void ClearView();

  // --- independent data access (offsets in etype units, view-relative) ---
  pnc::Status ReadAt(std::uint64_t offset, void* buf, std::uint64_t count,
                     const simmpi::Datatype& memtype);
  pnc::Status WriteAt(std::uint64_t offset, const void* buf,
                      std::uint64_t count, const simmpi::Datatype& memtype);

  // --- collective data access ---
  pnc::Status ReadAtAll(std::uint64_t offset, void* buf, std::uint64_t count,
                        const simmpi::Datatype& memtype);
  pnc::Status WriteAtAll(std::uint64_t offset, const void* buf,
                         std::uint64_t count, const simmpi::Datatype& memtype);

  /// Collective; returns when all ranks' data is at the servers.
  pnc::Status Sync();
  /// Independent: flush this rank's handle only (no agreement, no barrier).
  /// For layers where one rank orders its own writes (e.g. a root-performed
  /// header commit) without involving peers.
  pnc::Status SyncLocal();
  /// Collective resize (MPI_File_set_size).
  pnc::Status SetSize(std::uint64_t size);
  /// Independent size query.
  pnc::Result<std::uint64_t> GetSize() const;
  /// Collective close.
  pnc::Status Close();

  [[nodiscard]] const Hints& hints() const;
  [[nodiscard]] simmpi::Comm& comm();
  /// The pfs tenant index this handle's I/O is billed to (0 = default).
  /// Minted at Open from hints/environment; layers creating sidecar pfs
  /// handles (journal, sums) tag them with this so a dataset's whole I/O
  /// footprint lands on one tenant.
  [[nodiscard]] int tenant() const;

  /// Attach a chunk-sum map (format/sums.hpp) owned by the caller (the
  /// dataset layer), which must outlive the file. Writes then mark their
  /// chunks dirty in the map; with `verify` set, every physical read —
  /// independent, sieving (including RMW pre-reads), and two-phase
  /// aggregator I/O — recomputes covered chunk CRCs, heals transient
  /// mismatches by re-reading, and returns kDataCorrupt for persistent
  /// ones. Pass nullptr to detach. Not collective.
  void AttachSums(ncformat::ChunkSumMap* sums, bool verify);

 private:
  struct Impl;

  pnc::Status IndependentIo(std::uint64_t offset_etypes, void* buf,
                            std::uint64_t count, const simmpi::Datatype& memtype,
                            bool is_write);
  pnc::Status CollectiveIo(std::uint64_t offset_etypes, void* buf,
                           std::uint64_t count, const simmpi::Datatype& memtype,
                           bool is_write);
  /// Move `segments` worth of bytes between the file and `data` (packed
  /// order), using data sieving when profitable. Advances the clock.
  /// Transient storage faults are retried per the retry hints; a non-ok
  /// return means the transfer did not complete (kIo after retries are
  /// exhausted, or a permanent storage error).
  pnc::Status SievedTransfer(const std::vector<pnc::Extent>& segments,
                             std::byte* data, bool is_write);

  std::shared_ptr<Impl> impl_;
};

}  // namespace mpiio
