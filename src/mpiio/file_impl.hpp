// Shared state behind mpiio::File (internal header).
#pragma once

#include <optional>

#include "format/sums.hpp"
#include "mpiio/file.hpp"
#include "util/retry.hpp"

namespace mpiio {

struct File::Impl {
  Impl(simmpi::Comm c, pfs::FileSystem* filesystem, pfs::File f, unsigned m,
       Hints h)
      : comm(std::move(c)), fs(filesystem), file(std::move(f)), mode(m),
        hints(h),
        retry(pnc::util::ResolveRetryPolicy(comm.rank(), h.retry_max,
                                            h.retry_backoff_ns)) {}

  simmpi::Comm comm;
  pfs::FileSystem* fs;
  pfs::File file;
  unsigned mode;
  Hints hints;
  pnc::util::RetryPolicy retry;  ///< hints + env + per-rank jitter
  FileView view;
  bool open = true;

  /// Attached chunk-sum map (format/sums.hpp), owned by the dataset layer.
  /// Null = integrity machinery fully disarmed (PNC_SUMS=0 discipline).
  /// When set, every successful physical write marks its chunks dirty;
  /// reads additionally verify when `sums_verify` is set (read-only
  /// sessions — a writable parallel session cannot verify, because peers'
  /// writes dirty chunks this rank has no way to know about).
  ncformat::ChunkSumMap* sums = nullptr;
  bool sums_verify = false;

  /// Move [off, off+len) between the file and `data` through the
  /// fault-injected pfs path, absorbing short transfers by resuming from the
  /// transferred count and transient errors by bounded retry-with-backoff
  /// (charged to the virtual clock, counted in pfs::Stats). A transient
  /// error that survives the retry budget is reported as kIo. On top of
  /// RawIo this maintains the attached chunk-sum map: dirty marking on
  /// writes, verify/heal on reads (every read path — independent, sieving
  /// windows, RMW pre-reads, and two-phase aggregator I/O — funnels here).
  pnc::Status RetryIo(bool is_write, std::uint64_t off, std::byte* data,
                      std::uint64_t len);
  /// The transfer itself, with no integrity hooks (verification re-reads
  /// use this directly to avoid recursion).
  pnc::Status RawIo(bool is_write, std::uint64_t off, std::byte* data,
                    std::uint64_t len);
  /// Same policy for a sync barrier (zero-length faultable op).
  pnc::Status RetrySync();
};

/// Collective error agreement: allreduce the most severe (most negative)
/// status code so every rank of a collective returns the same status. Ranks
/// that failed locally keep their own message; others report a peer failure.
pnc::Status AgreeStatus(simmpi::Comm& comm, const pnc::Status& local);

}  // namespace mpiio
