// Shared state behind mpiio::File (internal header).
#pragma once

#include <optional>

#include "mpiio/file.hpp"

namespace mpiio {

struct File::Impl {
  Impl(simmpi::Comm c, pfs::FileSystem* filesystem, pfs::File f, unsigned m,
       Hints h)
      : comm(std::move(c)), fs(filesystem), file(std::move(f)), mode(m),
        hints(h) {}

  simmpi::Comm comm;
  pfs::FileSystem* fs;
  pfs::File file;
  unsigned mode;
  Hints hints;
  FileView view;
  bool open = true;
};

}  // namespace mpiio
