#include "mpiio/view.hpp"

#include <algorithm>
#include <cassert>

namespace mpiio {

FileView::FileView() : etype_(simmpi::ByteType()), filetype_(simmpi::ByteType()) {}

FileView::FileView(std::uint64_t disp, simmpi::Datatype etype,
                   simmpi::Datatype filetype)
    : identity_(false),
      disp_(disp),
      etype_(std::move(etype)),
      filetype_(std::move(filetype)) {
  tile_size_ = filetype_.size();
  tile_extent_ = filetype_.extent();
  runs_ = filetype_.Flatten();
  assert(std::is_sorted(runs_.begin(), runs_.end(),
                        [](const pnc::Extent& a, const pnc::Extent& b) {
                          return a.offset < b.offset;
                        }) &&
         "file views require monotonic filetypes (MPI-2 requirement)");
  prefix_.reserve(runs_.size() + 1);
  std::uint64_t acc = 0;
  for (const auto& r : runs_) {
    prefix_.push_back(acc);
    acc += r.len;
  }
  prefix_.push_back(acc);
  // Degenerate filetypes (zero data) are legal; MapRange of len 0 handles
  // them, and nonzero-length accesses through them are caller errors.
  if (identity_ || tile_size_ == 0) tile_extent_ = std::max<std::uint64_t>(tile_extent_, 1);
}

void FileView::MapRange(std::uint64_t logical_off, std::uint64_t len,
                        std::vector<pnc::Extent>& out) const {
  if (len == 0) return;
  if (identity_) {
    out.push_back({logical_off, len});
    return;
  }
  assert(tile_size_ > 0 && "nonzero access through an empty view");

  std::uint64_t remaining = len;
  std::uint64_t pos = logical_off;
  while (remaining > 0) {
    const std::uint64_t tile = pos / tile_size_;
    const std::uint64_t in_tile = pos % tile_size_;
    const std::uint64_t tile_base = disp_ + tile * tile_extent_;

    // Find the run containing data offset `in_tile` within the tile.
    auto it = std::upper_bound(prefix_.begin(), prefix_.end(), in_tile);
    auto run_idx = static_cast<std::size_t>(it - prefix_.begin()) - 1;
    // Emit runs until the tile or the request is exhausted.
    std::uint64_t data_off = in_tile;
    while (remaining > 0 && run_idx < runs_.size()) {
      const std::uint64_t within = data_off - prefix_[run_idx];
      const std::uint64_t avail = runs_[run_idx].len - within;
      const std::uint64_t n = std::min(avail, remaining);
      const std::uint64_t phys = tile_base + runs_[run_idx].offset + within;
      if (!out.empty() && out.back().end() == phys) {
        out.back().len += n;  // coalesce across run/tile boundaries
      } else {
        out.push_back({phys, n});
      }
      remaining -= n;
      data_off += n;
      pos += n;
      if (data_off == prefix_[run_idx + 1]) ++run_idx;
    }
  }
}

}  // namespace mpiio
