// MPI file views.
//
// A view = (displacement, etype, filetype) defines the bytes of a file that
// are "visible" to a rank (MPI-2 §9.3; paper §4.2.2). The filetype tiles the
// file starting at the displacement; the data bytes selected by successive
// tiles form the rank's logical, linear view space. PnetCDF encodes every
// variable access pattern (vara/vars/varm, record interleavings) as a view.
#pragma once

#include <cstdint>
#include <vector>

#include "simmpi/datatype.hpp"
#include "util/bytes.hpp"

namespace mpiio {

class FileView {
 public:
  /// Identity view: the whole file as a byte stream.
  FileView();
  FileView(std::uint64_t disp, simmpi::Datatype etype,
           simmpi::Datatype filetype);

  /// True for the default whole-file byte view (fast path: no translation).
  [[nodiscard]] bool identity() const { return identity_; }
  [[nodiscard]] std::uint64_t disp() const { return disp_; }
  [[nodiscard]] const simmpi::Datatype& etype() const { return etype_; }
  [[nodiscard]] std::uint64_t etype_size() const { return etype_.size(); }
  /// Data bytes per filetype tile.
  [[nodiscard]] std::uint64_t tile_size() const { return tile_size_; }

  /// Translate the logical byte range [logical_off, logical_off + len) of
  /// view space into physical file extents, appended to `out` in logical
  /// order. Valid filetypes have monotonically nondecreasing offsets, so the
  /// result is sorted and hole-separated.
  void MapRange(std::uint64_t logical_off, std::uint64_t len,
                std::vector<pnc::Extent>& out) const;

 private:
  bool identity_ = true;
  std::uint64_t disp_ = 0;
  simmpi::Datatype etype_;
  simmpi::Datatype filetype_;
  std::uint64_t tile_size_ = 1;    ///< data bytes per tile
  std::uint64_t tile_extent_ = 1;  ///< file bytes spanned per tile
  std::vector<pnc::Extent> runs_;  ///< filetype runs (offset within tile)
  std::vector<std::uint64_t> prefix_;  ///< data bytes before runs_[i]
};

}  // namespace mpiio
