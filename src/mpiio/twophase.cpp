// Two-phase collective I/O (ROMIO's generalized collective algorithm).
//
// Phase 1 (exchange): the aggregate file range touched by the collective is
// split into contiguous *file domains*, one per aggregator rank. Every rank
// ships the parts of its request that fall inside each domain to the owning
// aggregator (writes) or receives them from it (reads), window by window.
//
// Phase 2 (I/O): each aggregator services its domain with large contiguous
// requests of up to cb_buffer_size bytes, using read-modify-write when the
// union of pieces leaves holes in a window.
//
// This is the optimization the paper leans on: "All processes in combination
// can make a single MPI-IO request to transfer large contiguous data as a
// whole" (§4.2.2). The per-request latency of the PFS makes the win visible.
#include <algorithm>
#include <cassert>
#include <cstring>
#include <limits>

#include "iostat/events.hpp"
#include "iostat/iostat.hpp"
#include "iostat/pattern.hpp"
#include "iostat/timeline.hpp"
#include "mpiio/file_impl.hpp"

namespace mpiio {

namespace {

// User-space tag block for the fault-tolerant exchange, kept far above any
// tag application code plausibly uses on the same communicator. Each window
// round uses two tags (requests, read replies) so a rank racing one round
// ahead can never match a peer's still-pending receive.
constexpr int kFtTagBase = 1 << 24;
int FtTag(std::uint64_t w, int phase) {
  return kFtTagBase + static_cast<int>(w) * 2 + phase;
}

/// Fault-tolerant personalized all-to-all: every live rank posts all its
/// sends before draining any receive (buffered sends make that legal), so a
/// rank dying mid-collective only leaves holes — observed via RecvFT — and
/// never a live peer blocked on a live peer. Returns false when any peer
/// died; the dead peers' slots in `out` are left empty.
bool AlltoallFT(simmpi::Comm& c, std::vector<std::vector<std::byte>> send,
                int tag, std::vector<std::vector<std::byte>>& out) {
  PNC_IOSTAT_ADD(kMpiCollectives, 1);
  const int p = c.size();
  const int rank = c.rank();
  out.assign(static_cast<std::size_t>(p), {});
  out[static_cast<std::size_t>(rank)] =
      std::move(send[static_cast<std::size_t>(rank)]);
  for (int i = 1; i < p; ++i) {
    const int dst = (rank + i) % p;
    c.Send(dst, tag, send[static_cast<std::size_t>(dst)]);
  }
  bool ok = true;
  for (int i = 1; i < p; ++i) {
    const int src = (rank - i + p) % p;
    ok = c.RecvFT(src, tag, out[static_cast<std::size_t>(src)]) && ok;
  }
  return ok;
}

/// One rank's portion of a collective, split by aggregator domain: for each
/// domain, the half-open range of `segs` indices plus the packed-data offset
/// where that domain's bytes start (segments are file-sorted, so each
/// domain's bytes form one contiguous slice of the packed buffer).
struct DomainSlices {
  struct Slice {
    std::size_t first_seg = 0, last_seg = 0;  // [first, last)
    std::uint64_t first_seg_skip = 0;  ///< bytes of segs[first] before domain
    std::uint64_t data_off = 0;
    std::uint64_t bytes = 0;
  };
  std::vector<Slice> per_domain;
};

std::uint64_t DivCeil(std::uint64_t a, std::uint64_t b) {
  return (a + b - 1) / b;
}

/// Offset -> owning domain index, given domain size.
std::size_t DomainOf(std::uint64_t off, std::uint64_t gmin,
                     std::uint64_t domain_size, std::size_t naggs) {
  return std::min<std::size_t>((off - gmin) / domain_size, naggs - 1);
}

DomainSlices SplitByDomain(const std::vector<pnc::Extent>& segs,
                           std::uint64_t gmin, std::uint64_t domain_size,
                           std::size_t naggs) {
  DomainSlices ds;
  ds.per_domain.resize(naggs);
  for (auto& s : ds.per_domain) s.first_seg = segs.size();

  std::uint64_t data_off = 0;
  for (std::size_t i = 0; i < segs.size(); ++i) {
    std::uint64_t off = segs[i].offset;
    std::uint64_t remaining = segs[i].len;
    std::uint64_t consumed = 0;
    while (remaining > 0) {
      const std::size_t d = DomainOf(off, gmin, domain_size, naggs);
      const std::uint64_t dom_end =
          (d + 1 == naggs) ? ~0ULL : gmin + (d + 1) * domain_size;
      const std::uint64_t n = std::min(remaining, dom_end - off);
      auto& slice = ds.per_domain[d];
      if (slice.bytes == 0) {
        slice.first_seg = i;
        slice.first_seg_skip = consumed;
        slice.data_off = data_off + consumed;
      }
      slice.last_seg = i + 1;
      slice.bytes += n;
      off += n;
      consumed += n;
      remaining -= n;
    }
    data_off += segs[i].len;
  }
  return ds;
}

struct Piece {
  std::uint64_t file_off = 0;
  std::uint64_t len = 0;
  const std::byte* src = nullptr;  ///< for writes
  int src_rank = 0;                ///< for reads: who wants these bytes
  std::uint64_t reply_off = 0;     ///< for reads: offset in the reply blob
};

}  // namespace

pnc::Status File::CollectiveIo(std::uint64_t offset_etypes, void* buf,
                               std::uint64_t count,
                               const simmpi::Datatype& memtype, bool is_write) {
  if (!impl_ || !impl_->open) return pnc::Status(pnc::Err::kBadId, "coll io");
  if (is_write)
    PNC_IOSTAT_ADD(kMpiioCollWrites, 1);
  else
    PNC_IOSTAT_ADD(kMpiioCollReads, 1);
  auto& im = *impl_;
  auto& comm = im.comm;
  auto& clk = comm.clock();
  const auto& cost = comm.cost();
  const int p = comm.size();

  const std::uint64_t bytes = count * memtype.size();
  if (bytes > 0 && buf == nullptr)
    return pnc::Status(pnc::Err::kNullBuf, "coll io");

  PNC_IOSTAT_EVENT(kCollBegin, clk.now(), 0, bytes, is_write, nullptr);
  const std::uint64_t my_req = PNC_IOSTAT_CURRENT_REQ();

  const bool use_cb = is_write ? im.hints.cb_write : im.hints.cb_read;
  if (!use_cb || p == 1) {
    // Collective buffering disabled: every rank does independent I/O, then
    // the collective completes when the slowest rank finishes. Error
    // agreement still applies: a collective returns one status everywhere.
    pnc::Status st = bytes == 0 ? pnc::Status::Ok()
                                : IndependentIo(offset_etypes, buf, count,
                                                memtype, is_write);
    st = AgreeStatus(comm, st);
    comm.SyncClocksToMax();
    PNC_IOSTAT_EVENT(kCollEnd, clk.now(), 0, st.ok() ? 1 : 0, is_write,
                     nullptr);
    return st;
  }

  PNC_IOSTAT_ADD(kMpiioCollPayloadBytes, bytes);

  // Flatten this rank's file access.
  std::vector<pnc::Extent> segs;
  if (bytes > 0)
    im.view.MapRange(offset_etypes * im.view.etype_size(), bytes, segs);
  // Pattern: the per-rank fragment sizes entering the exchange ("pre"
  // extents); the aggregators' file windows below are the "post" side.
  PNC_IOSTAT_PATTERN_TWOPHASE_PRE(segs);

  // Stage noncontiguous memory through a packed buffer.
  std::vector<std::byte> staging;
  std::byte* data = static_cast<std::byte*>(buf);
  const bool contig_mem = memtype.is_contiguous();
  if (!contig_mem && bytes > 0) {
    staging.resize(bytes);
    if (is_write) {
      memtype.Pack(data, count, staging.data());
      clk.Advance(cost.CopyCost(bytes));
    }
    data = staging.data();
  }

  // --- rank-fault tolerance (armed chaos runs only) ---
  // The exchange itself runs on `work`: normally an alias of the caller's
  // comm, but under an armed policy the agreed survivor subset. Aggregator
  // duties of a rank that died before the collective are reassigned simply
  // because the domain mapping below is computed over `work` — the fallback
  // aggregator is deterministic (same formula, smaller comm). A death
  // *during* the collective surfaces through the FT exchange/agreement and
  // turns into kRankFailed on every survivor; either way, nobody hangs.
  const bool ft = comm.FaultsArmed();
  simmpi::Comm work = comm;
  bool degraded = false;  ///< a death was observed before the window loop
  if (ft) {
    if (comm.SelfDead())
      return pnc::Status(pnc::Err::kRankFailed, "this rank crashed");
    const simmpi::AgreeOutcome entry = comm.AgreeFT(0);
    if (entry.any_dead) work = comm.LiveSubsetFT(entry);
  }
  const int wp = work.size();

  // Global extent of the collective.
  const std::uint64_t my_min = segs.empty() ? ~0ULL : segs.front().offset;
  const std::uint64_t my_max = segs.empty() ? 0 : segs.back().end();
  std::uint64_t gmin, gmax;
  if (ft) {
    // Min/max via the agreement monitor (an allreduce would abort if a
    // participant died mid-round). Empty ranks contribute the identity.
    constexpr std::int64_t kI64Max = std::numeric_limits<std::int64_t>::max();
    const simmpi::AgreeOutcome rmin = work.AgreeFT(
        my_min == ~0ULL ? kI64Max : static_cast<std::int64_t>(my_min));
    const simmpi::AgreeOutcome rmax =
        work.AgreeFT(-static_cast<std::int64_t>(my_max));
    degraded = rmin.any_dead || rmax.any_dead;
    gmin = rmin.min_value == kI64Max ? ~0ULL
                                     : static_cast<std::uint64_t>(rmin.min_value);
    gmax = static_cast<std::uint64_t>(-rmax.min_value);
  } else {
    gmin = comm.AllreduceMin(my_min);
    gmax = comm.AllreduceMax(my_max);
  }
  if (degraded) {
    // The group shrank while setting up; skip the transfer and agree on the
    // failure so every survivor returns the identical status.
    const pnc::Status st = AgreeStatus(comm, pnc::Status::Ok());
    PNC_IOSTAT_EVENT(kCollEnd, clk.now(), 0, 0, is_write, nullptr);
    return st;
  }
  if (gmin >= gmax) {  // nothing to do anywhere
    if (ft) {
      const pnc::Status st = AgreeStatus(comm, pnc::Status::Ok());
      PNC_IOSTAT_EVENT(kCollEnd, clk.now(), 0, st.ok() ? 1 : 0, is_write,
                       nullptr);
      return st;
    }
    comm.SyncClocksToMax();
    PNC_IOSTAT_EVENT(kCollEnd, clk.now(), 0, 1, is_write, nullptr);
    return pnc::Status::Ok();
  }

  // File domains: an even share per aggregator, with boundaries on absolute
  // stripe boundaries so two aggregators never touch one stripe and every
  // interior window write is stripe-aligned (ROMIO aligns its domains to
  // file system lock/block boundaries for exactly this reason).
  const auto naggs = std::min(static_cast<std::size_t>(im.hints.cb_nodes),
                              static_cast<std::size_t>(wp));
  const std::uint64_t stripe = im.fs->config().stripe_size;
  const std::uint64_t gmin_aligned = gmin / stripe * stripe;
  std::uint64_t domain_size =
      DivCeil(DivCeil(gmax - gmin_aligned, naggs), stripe) * stripe;
  domain_size = std::max(domain_size, stripe);
  // Aggregators are spread across the (surviving) communicator.
  auto agg_rank = [&](std::size_t d) {
    return static_cast<int>(d * static_cast<std::size_t>(wp) / naggs);
  };
  std::size_t my_domain = naggs;  // "not an aggregator"
  for (std::size_t d = 0; d < naggs; ++d)
    if (agg_rank(d) == work.rank()) my_domain = d;

  const DomainSlices ds = SplitByDomain(segs, gmin_aligned, domain_size, naggs);

  // Window loop: every rank iterates the same number of rounds; round w
  // covers [dom_start + w*cb, dom_start + (w+1)*cb) of every domain.
  const std::uint64_t cb = im.hints.cb_buffer_size;
  const std::uint64_t rounds = DivCeil(domain_size, cb);

  // Per-domain cursors into this rank's segments.
  struct Cursor {
    std::size_t seg;
    std::uint64_t seg_skip;  ///< bytes of segs[seg] already consumed
    std::uint64_t data_off;
  };
  std::vector<Cursor> cur(naggs);
  for (std::size_t d = 0; d < naggs; ++d)
    cur[d] = {ds.per_domain[d].first_seg, ds.per_domain[d].first_seg_skip,
              ds.per_domain[d].data_off};

  std::vector<std::byte> window(cb);

  // First error seen by this rank (local I/O as aggregator). Even after an
  // error, every rank keeps participating in every round's exchanges so the
  // collective protocol stays aligned; the statuses are reconciled once at
  // the end with AgreeStatus.
  pnc::Status st;

  for (std::uint64_t w = 0; w < rounds; ++w) {
    const double exchange_start = clk.now();
    PNC_IOSTAT_EVENT(kXchgBegin, exchange_start, 0, w, 0, nullptr);
    // ---- build this round's per-aggregator messages ----
    // Message layout: u64 req (the sender's request ID, for causal
    // attribution of aggregator I/O), u64 n, then n * (u64 off, u64 len),
    // then the bytes (writes only; for reads the extents alone form the
    // request).
    std::vector<std::vector<std::byte>> sendbufs(
        static_cast<std::size_t>(wp));
    // For reads: where in the packed buffer this round's slice of each
    // domain starts (the reply from the aggregator lands there verbatim,
    // because extents are requested in packed-data order).
    std::vector<std::uint64_t> round_data_start(naggs, 0);
    std::vector<std::uint64_t> round_data_len(naggs, 0);
    for (std::size_t d = 0; d < naggs; ++d) {
      const std::uint64_t dom_start = gmin_aligned + d * domain_size;
      const std::uint64_t dom_end = std::min(gmax, dom_start + domain_size);
      const std::uint64_t w0 = dom_start + w * cb;
      if (w0 >= dom_end) continue;
      const std::uint64_t w1 = std::min(dom_end, w0 + cb);

      // Collect extents of mine inside [w0, w1).
      std::vector<pnc::Extent> ext;
      std::uint64_t data_start = cur[d].data_off;
      std::uint64_t data_len = 0;
      auto& c = cur[d];
      while (c.seg < ds.per_domain[d].last_seg) {
        const std::uint64_t s_off = segs[c.seg].offset + c.seg_skip;
        if (s_off >= w1) break;
        const std::uint64_t n =
            std::min(segs[c.seg].len - c.seg_skip, w1 - s_off);
        ext.push_back({s_off, n});
        data_len += n;
        c.seg_skip += n;
        c.data_off += n;
        if (c.seg_skip == segs[c.seg].len) {
          ++c.seg;
          c.seg_skip = 0;
        } else {
          break;  // window boundary split this segment
        }
      }
      if (ext.empty()) continue;
      round_data_start[d] = data_start;
      round_data_len[d] = data_len;

      auto& msg = sendbufs[static_cast<std::size_t>(agg_rank(d))];
      const std::uint64_t n_ext = ext.size();
      const std::size_t header = 16 + 16 * ext.size();
      msg.resize(header + (is_write ? data_len : 0));
      std::memcpy(msg.data(), &my_req, 8);
      std::memcpy(msg.data() + 8, &n_ext, 8);
      std::memcpy(msg.data() + 16, ext.data(), 16 * ext.size());
      if (is_write) {
        std::memcpy(msg.data() + header, data + data_start, data_len);
        clk.Advance(cost.CopyCost(data_len));
      }
    }

    for (int r = 0; r < wp; ++r) {
      if (r != work.rank() && !sendbufs[static_cast<std::size_t>(r)].empty()) {
        PNC_IOSTAT_ADD(kMpiioExchangeMsgs, 1);
        PNC_IOSTAT_TIMELINE_MARK(kExchangeMsgs, exchange_start, 1);
        PNC_IOSTAT_EVENT(kXchgSend, exchange_start, 0, w, r, nullptr);
      }
    }
    std::vector<std::vector<std::byte>> recvbufs;
    if (ft) {
      if (!AlltoallFT(work, std::move(sendbufs), FtTag(w, 0), recvbufs) &&
          st.ok())
        st = pnc::Status(pnc::Err::kRankFailed, "a peer rank crashed");
    } else {
      recvbufs = comm.Alltoall(std::move(sendbufs));
    }
    PNC_IOSTAT_ADD(kMpiioExchangeNs, clk.now() - exchange_start);
    PNC_IOSTAT_SPAN("mpiio", "exchange", exchange_start, clk.now());
    PNC_IOSTAT_EVENT(kXchgEnd, clk.now(), 0, w, 0, nullptr);
    const double io_start = clk.now();
    PNC_IOSTAT_EVENT(kIoBegin, io_start, 0, w, 0, nullptr);

    // ---- aggregator services its window ----
    std::vector<std::vector<std::byte>> replies(static_cast<std::size_t>(wp));
    if (my_domain < naggs) {
      const std::uint64_t dom_start = gmin_aligned + my_domain * domain_size;
      const std::uint64_t dom_end = std::min(gmax, dom_start + domain_size);
      const std::uint64_t w0 = dom_start + w * cb;
      if (w0 < dom_end) {
        std::vector<Piece> pieces;
        std::vector<std::uint64_t> reply_bytes(static_cast<std::size_t>(wp), 0);
        for (int r = 0; r < wp; ++r) {
          const auto& msg = recvbufs[static_cast<std::size_t>(r)];
          if (msg.empty()) continue;
          std::uint64_t src_req = 0;
          std::memcpy(&src_req, msg.data(), 8);
          std::uint64_t n_ext = 0;
          std::memcpy(&n_ext, msg.data() + 8, 8);
          PNC_IOSTAT_EVENT(kAggPiece, io_start, 0,
                           (w << 32) | static_cast<std::uint64_t>(r), src_req,
                           nullptr);
          const std::byte* payload = msg.data() + 16 + 16 * n_ext;
          std::uint64_t dpos = 0;
          for (std::uint64_t e = 0; e < n_ext; ++e) {
            pnc::Extent x;
            std::memcpy(&x, msg.data() + 16 + 16 * e, 16);
            Piece pc;
            pc.file_off = x.offset;
            pc.len = x.len;
            pc.src = is_write ? payload + dpos : nullptr;
            pc.src_rank = r;
            pc.reply_off = reply_bytes[static_cast<std::size_t>(r)];
            pieces.push_back(pc);
            dpos += x.len;
            reply_bytes[static_cast<std::size_t>(r)] += x.len;
          }
        }
        if (!pieces.empty()) {
          std::sort(pieces.begin(), pieces.end(),
                    [](const Piece& a, const Piece& b) {
                      return a.file_off < b.file_off;
                    });
          const std::uint64_t span_start = pieces.front().file_off;
          std::uint64_t span_end = 0;
          std::uint64_t covered = 0;
          for (const auto& pc : pieces) {
            span_end = std::max(span_end, pc.file_off + pc.len);
            covered += pc.len;
          }
          const std::uint64_t span_len = span_end - span_start;
          assert(span_len <= cb);

          if (is_write) {
            const bool holes = covered < span_len;
            pnc::Status wst;
            if (holes && st.ok()) {
              PNC_IOSTAT_ADD(kMpiioAggBytes, span_len);  // RMW pre-read
              PNC_IOSTAT_PATTERN_AGG(span_len);
              wst = im.RetryIo(/*is_write=*/false, span_start, window.data(),
                               span_len);
            }
            if (wst.ok() && st.ok()) {
              for (const auto& pc : pieces)
                std::memcpy(window.data() + (pc.file_off - span_start), pc.src,
                            pc.len);
              clk.Advance(cost.CopyCost(covered));
              PNC_IOSTAT_ADD(kMpiioAggBytes, span_len);
              PNC_IOSTAT_PATTERN_AGG(span_len);
              wst = im.RetryIo(/*is_write=*/true, span_start, window.data(),
                               span_len);
            }
            if (st.ok() && !wst.ok()) st = wst;
          } else {
            // Replies are always sized to what each requester expects, even
            // on failure (zero-filled), so the return Alltoall stays aligned
            // and the error is reported via status agreement, not a hang.
            for (int r = 0; r < wp; ++r)
              replies[static_cast<std::size_t>(r)].assign(
                  reply_bytes[static_cast<std::size_t>(r)], std::byte{0});
            pnc::Status rst;
            if (st.ok()) {
              PNC_IOSTAT_ADD(kMpiioAggBytes, span_len);
              PNC_IOSTAT_PATTERN_AGG(span_len);
              rst = im.RetryIo(/*is_write=*/false, span_start, window.data(),
                               span_len);
            }
            if (rst.ok() && st.ok()) {
              for (const auto& pc : pieces)
                std::memcpy(
                    replies[static_cast<std::size_t>(pc.src_rank)].data() +
                        pc.reply_off,
                    window.data() + (pc.file_off - span_start), pc.len);
              clk.Advance(cost.CopyCost(covered));
            } else if (st.ok()) {
              st = rst;
            }
          }
        }
      }
    }

    PNC_IOSTAT_ADD(kMpiioIoPhaseNs, clk.now() - io_start);
    PNC_IOSTAT_SPAN("mpiio", "io", io_start, clk.now());
    PNC_IOSTAT_EVENT(kIoEnd, clk.now(), 0, w, 0, nullptr);

    // ---- reads: ship the bytes back into each requester's packed buffer ----
    if (!is_write) {
      const double reply_start = clk.now();
      PNC_IOSTAT_EVENT(kXchgBegin, reply_start, 0, w, 0, nullptr);
      std::vector<std::vector<std::byte>> returned;
      if (ft) {
        if (!AlltoallFT(work, std::move(replies), FtTag(w, 1), returned) &&
            st.ok())
          st = pnc::Status(pnc::Err::kRankFailed, "a peer rank crashed");
      } else {
        returned = comm.Alltoall(std::move(replies));
      }
      for (std::size_t d = 0; d < naggs; ++d) {
        if (round_data_len[d] == 0) continue;
        const auto& blob = returned[static_cast<std::size_t>(agg_rank(d))];
        // The reply concatenates my requested extents in request order,
        // which is packed-data order, so it lands in one slice. When one
        // aggregator serves several of my domains this would be ambiguous —
        // but domains map to distinct aggregator ranks by construction
        // (agg_rank is injective for d < naggs <= p). A shorter-than-expected
        // blob means the aggregator failed; record it and let the final
        // agreement surface the real cause.
        if (blob.size() != round_data_len[d]) {
          if (st.ok())
            st = pnc::Status(pnc::Err::kInternal, "collective reply truncated");
        }
        const std::uint64_t n =
            std::min<std::uint64_t>(blob.size(), round_data_len[d]);
        std::memcpy(data + round_data_start[d], blob.data(), n);
        clk.Advance(cost.CopyCost(n));
      }
      PNC_IOSTAT_ADD(kMpiioExchangeNs, clk.now() - reply_start);
      PNC_IOSTAT_SPAN("mpiio", "exchange", reply_start, clk.now());
      PNC_IOSTAT_EVENT(kXchgEnd, clk.now(), 0, w, 0, nullptr);
    }
  }

  // Collective error agreement: all ranks return the same status (most
  // severe code across the communicator), so no rank proceeds believing the
  // collective succeeded while an aggregator failed.
  st = AgreeStatus(comm, st);

  if (st.ok() && !is_write && !contig_mem && bytes > 0) {
    memtype.Unpack(staging.data(), count, static_cast<std::byte*>(buf));
    clk.Advance(cost.CopyCost(bytes));
  }
  // Under FT the final agreement already synchronized survivor clocks; an
  // allreduce here would abort if a participant died mid-collective.
  // The jump this rank's clock takes at the barrier is exactly how long it
  // idled waiting for the slowest rank — the straggler-wait timeline track.
  const double pre_sync_ns = clk.now();
  if (!ft) comm.SyncClocksToMax();
  if (clk.now() > pre_sync_ns)
    PNC_IOSTAT_TIMELINE_MARK(kStragglerWaitNs, clk.now(),
                             clk.now() - pre_sync_ns);
  PNC_IOSTAT_EVENT(kCollEnd, clk.now(), 0, st.ok() ? 1 : 0, is_write,
                   nullptr);
  return st;
}

}  // namespace mpiio
