#include "tools/benchlib/trend.hpp"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <map>
#include <utility>

#include "iostat/schemas.hpp"

namespace benchlib {
namespace {

/// Same glyph ramp as the iostat timeline/heatmap renderers: one character
/// per sample, scaled to the series' own [min, max].
constexpr const char kGlyphs[] = " .:-=+*#%@";

std::string Sparkline(const std::vector<double>& values) {
  if (values.empty()) return {};
  double lo = values[0], hi = values[0];
  for (const double v : values) {
    lo = std::min(lo, v);
    hi = std::max(hi, v);
  }
  std::string out;
  for (const double v : values) {
    // A flat series renders mid-ramp so it reads as "steady", not "empty".
    const double t = hi > lo ? (v - lo) / (hi - lo) : 0.5;
    const int g = std::min(9, static_cast<int>(t * 10.0));
    out += kGlyphs[g < 0 ? 0 : g];
  }
  return out;
}

std::string FmtValue(double v) {
  char buf[48];
  if (std::fabs(v) >= 1e6 || (v != 0.0 && std::fabs(v) < 1e-3))
    std::snprintf(buf, sizeof buf, "%.3e", v);
  else
    std::snprintf(buf, sizeof buf, "%.3f", v);
  return buf;
}

}  // namespace

pnc::Result<std::vector<ResultsFile>> ParseHistory(const std::string& text) {
  const std::string record_marker =
      std::string("\"") + iostat::schemas::kBench + "\"";
  const std::string header_marker =
      std::string("\"") + iostat::schemas::kBenchSuite + "\"";
  std::vector<std::string> chunks;
  std::size_t pos = 0;
  while (pos < text.size()) {
    std::size_t nl = text.find('\n', pos);
    if (nl == std::string::npos) nl = text.size();
    const std::string line = text.substr(pos, nl - pos);
    pos = nl + 1;
    // A header line starts a new run; anything else rides with the current
    // one. Record lines also contain the record marker, so test it first —
    // a stamped record's meta carries the suite schema string too.
    const bool is_header = line.find(record_marker) == std::string::npos &&
                           line.find(header_marker) != std::string::npos;
    if (is_header || chunks.empty()) chunks.emplace_back();
    chunks.back() += line;
    chunks.back() += '\n';
  }
  std::vector<ResultsFile> runs;
  for (std::size_t i = 0; i < chunks.size(); ++i) {
    auto rf = ParseResults(chunks[i]);
    if (!rf.ok())
      return pnc::Status(pnc::Err::kNotNc,
                         "run " + std::to_string(i + 1) + ": " +
                             rf.status().message());
    // Chatter-only chunks (e.g. leading human-readable output) carry no
    // records and no header; drop them rather than counting phantom runs.
    if (rf.value().records.empty() && !rf.value().header.present) continue;
    runs.push_back(std::move(rf.value()));
  }
  return runs;
}

pnc::Result<std::vector<ResultsFile>> LoadHistory(const std::string& path) {
  FILE* f = std::fopen(path.c_str(), "rb");
  if (f == nullptr)
    return pnc::Status(pnc::Err::kIo, "cannot open " + path);
  std::string text;
  char buf[1 << 16];
  std::size_t n;
  while ((n = std::fread(buf, 1, sizeof buf, f)) > 0) text.append(buf, n);
  const bool read_err = std::ferror(f) != 0;
  std::fclose(f);
  if (read_err) return pnc::Status(pnc::Err::kIo, "read error on " + path);
  return ParseHistory(text);
}

TrendReport BuildTrend(const std::vector<ResultsFile>& runs,
                       double tolerance_pct) {
  TrendReport rep;
  rep.num_runs = static_cast<int>(runs.size());
  // (record identity, metric) -> series, in first-appearance order.
  std::map<std::pair<std::string, std::string>, std::size_t> index;
  for (std::size_t r = 0; r < runs.size(); ++r) {
    for (const Record& rec : runs[r].records) {
      for (const auto& [name, value] : ComparableMetrics(rec)) {
        const auto key = std::make_pair(rec.Key(), name);
        auto it = index.find(key);
        if (it == index.end()) {
          it = index.emplace(key, rep.series.size()).first;
          TrendSeries s;
          s.bench = rec.bench;
          s.config_text = rec.config_text;
          s.metric = name;
          s.direction = MetricDirection(name);
          rep.series.push_back(std::move(s));
        }
        TrendSeries& s = rep.series[it->second];
        // One sample per run: a rerun of the same identity within a run
        // (not something the writers produce) keeps the first sample.
        if (!s.runs.empty() && s.runs.back() == static_cast<int>(r)) continue;
        s.runs.push_back(static_cast<int>(r));
        s.values.push_back(value);
      }
    }
  }
  for (TrendSeries& s : rep.series) {
    if (s.values.size() < 2) continue;
    const double first = s.values.front();
    const double last = s.values.back();
    if (first == 0.0) {
      s.drift_pct = last == 0.0 ? 0.0 : (last > 0 ? 1e99 : -1e99);
    } else {
      s.drift_pct = (last - first) / std::fabs(first) * 100.0;
    }
    const bool harmful = s.direction == Direction::kHigherIsBetter
                             ? s.drift_pct < 0.0
                             : s.drift_pct > 0.0;
    s.flagged = harmful && std::fabs(s.drift_pct) > tolerance_pct;
    if (s.flagged) ++rep.num_flagged;
  }
  return rep;
}

std::string RenderTrend(const TrendReport& rep) {
  std::string out;
  char buf[256];
  std::snprintf(buf, sizeof buf,
                "trend: %d runs, %zu series, %d drifted\n", rep.num_runs,
                rep.series.size(), rep.num_flagged);
  out += buf;
  // Stable order: file order, flagged series hoisted to the front of their
  // bench so a long report leads with what changed.
  std::vector<const TrendSeries*> order;
  order.reserve(rep.series.size());
  for (const TrendSeries& s : rep.series)
    if (s.flagged) order.push_back(&s);
  for (const TrendSeries& s : rep.series)
    if (!s.flagged) order.push_back(&s);
  std::string last_group;
  for (const TrendSeries* sp : order) {
    const TrendSeries& s = *sp;
    const std::string group = s.bench + " " + s.config_text;
    if (group != last_group) {
      out += "== " + s.bench + " " + s.config_text + "\n";
      last_group = group;
    }
    std::snprintf(buf, sizeof buf, "  %-34s [%s] %s -> %s  ",
                  s.metric.c_str(), Sparkline(s.values).c_str(),
                  FmtValue(s.values.empty() ? 0.0 : s.values.front()).c_str(),
                  FmtValue(s.values.empty() ? 0.0 : s.values.back()).c_str());
    out += buf;
    if (s.values.size() < 2) {
      out += "(single sample)\n";
      continue;
    }
    if (s.drift_pct >= 1e99 || s.drift_pct <= -1e99)
      std::snprintf(buf, sizeof buf, "%sinf%%", s.drift_pct > 0 ? "+" : "-");
    else
      std::snprintf(buf, sizeof buf, "%+.2f%%", s.drift_pct);
    out += buf;
    if (s.flagged) out += "  REGRESSED";
    out += "\n";
  }
  return out;
}

}  // namespace benchlib
