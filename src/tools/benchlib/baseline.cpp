#include "tools/benchlib/baseline.hpp"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <map>

#include "tools/cli.hpp"

namespace benchlib {
namespace {

constexpr double kInfDelta = 1e99;

bool EndsWith(const std::string& s, const char* suffix) {
  const std::size_t n = std::string(suffix).size();
  return s.size() >= n && s.compare(s.size() - n, n, suffix) == 0;
}

MetricDelta CompareMetric(const std::string& name, double base, double cur,
                          double tolerance_pct) {
  MetricDelta d;
  d.name = name;
  d.base = base;
  d.cur = cur;
  if (base == cur) {
    d.delta_pct = 0.0;
    return d;
  }
  if (base != 0.0) {
    d.delta_pct = (cur - base) / std::fabs(base) * 100.0;
  } else {
    d.delta_pct = cur > 0 ? kInfDelta : -kInfDelta;
  }
  const bool harmful = MetricDirection(name) == Direction::kHigherIsBetter
                           ? d.delta_pct < 0
                           : d.delta_pct > 0;
  if (std::fabs(d.delta_pct) > tolerance_pct) {
    d.regressed = harmful;
    d.improved = !harmful;
  }
  return d;
}

const char* StatusWord(RecordDelta::Status s) {
  switch (s) {
    case RecordDelta::Status::kOk: return "ok";
    case RecordDelta::Status::kImproved: return "improved";
    case RecordDelta::Status::kRegressed: return "REGRESSED";
    case RecordDelta::Status::kMissing: return "MISSING";
    case RecordDelta::Status::kNew: return "NEW";
  }
  return "?";
}

std::string FmtPct(double pct) {
  char buf[48];
  if (pct >= kInfDelta) return "+inf%";
  if (pct <= -kInfDelta) return "-inf%";
  std::snprintf(buf, sizeof buf, "%+.4g%%", pct);
  return buf;
}

std::string FmtNum(double v) {
  char buf[48];
  std::snprintf(buf, sizeof buf, "%.6g", v);
  return buf;
}

}  // namespace

Direction MetricDirection(const std::string& name) {
  return EndsWith(name, "mbps") || EndsWith(name, "speedup")
             ? Direction::kHigherIsBetter
             : Direction::kLowerIsBetter;
}

std::vector<std::pair<std::string, double>> ComparableMetrics(
    const Record& rec) {
  std::vector<std::pair<std::string, double>> out = rec.metrics;
  if (rec.has_iostat) {
    const iostat::Report& r = rec.iostat;
    const auto sum = [&r](iostat::Ctr c) {
      return static_cast<double>(r[c].sum);
    };
    out.emplace_back("iostat.pfs_bytes",
                     sum(iostat::Ctr::kPfsBytesRead) +
                         sum(iostat::Ctr::kPfsBytesWritten));
    out.emplace_back("iostat.pfs_ops", sum(iostat::Ctr::kPfsReadOps) +
                                           sum(iostat::Ctr::kPfsWriteOps));
    out.emplace_back("iostat.mpi_messages", sum(iostat::Ctr::kMpiMessages));
    out.emplace_back("iostat.exchange_msgs",
                     sum(iostat::Ctr::kMpiioExchangeMsgs));
    out.emplace_back("iostat.sieve_amplification", r.sieve_amplification);
    out.emplace_back("iostat.twophase_amplification",
                     r.twophase_amplification);
    out.emplace_back("iostat.exchange_frac", r.exchange_frac);
  }
  return out;
}

int CompareResult::ExitCode() const {
  return Passed() ? nctools::kExitOk : nctools::kExitCondition;
}

CompareResult Compare(const ResultsFile& baseline, const ResultsFile& current,
                      double tolerance_pct) {
  CompareResult res;
  // Identity: (bench, config). Duplicate identities within one file keep
  // first occurrence (the suites never emit duplicates; a hand-edited file
  // that does is compared on its first record).
  std::map<std::string, const Record*> cur_by_key;
  for (const Record& r : current.records)
    cur_by_key.emplace(r.Key(), &r);

  std::map<std::string, bool> baseline_seen;
  for (const Record& b : baseline.records) {
    if (!baseline_seen.emplace(b.Key(), true).second) continue;
    RecordDelta rd;
    rd.bench = b.bench;
    rd.config_text = b.config_text;
    const auto it = cur_by_key.find(b.Key());
    if (it == cur_by_key.end()) {
      rd.status = RecordDelta::Status::kMissing;
      ++res.num_missing;
      res.records.push_back(std::move(rd));
      continue;
    }
    const Record* c = it->second;
    cur_by_key.erase(it);

    std::map<std::string, double> cur_metrics;
    for (const auto& [k, v] : ComparableMetrics(*c)) cur_metrics[k] = v;
    bool regressed = false, improved = false;
    for (const auto& [k, v] : ComparableMetrics(b)) {
      const auto cit = cur_metrics.find(k);
      // A metric present in the baseline but gone from the current record
      // compares against 0 (shows up as a full-size delta).
      MetricDelta d = CompareMetric(
          k, v, cit == cur_metrics.end() ? 0.0 : cit->second, tolerance_pct);
      regressed |= d.regressed;
      improved |= d.improved;
      rd.deltas.push_back(std::move(d));
    }
    rd.status = regressed ? RecordDelta::Status::kRegressed
                : improved ? RecordDelta::Status::kImproved
                           : RecordDelta::Status::kOk;
    if (regressed) ++res.num_regressed;
    else if (improved) ++res.num_improved;
    else ++res.num_ok;
    res.records.push_back(std::move(rd));
  }

  // Whatever remains in the current run has no baseline counterpart: the
  // suite composition changed, which needs an explicit --update-baseline.
  for (const Record& r : current.records) {
    const auto it = cur_by_key.find(r.Key());
    if (it == cur_by_key.end() || it->second != &r) continue;
    RecordDelta rd;
    rd.bench = r.bench;
    rd.config_text = r.config_text;
    rd.status = RecordDelta::Status::kNew;
    ++res.num_new;
    res.records.push_back(std::move(rd));
  }
  return res;
}

std::string RenderDeltaTable(const CompareResult& res, int max_regressions) {
  std::string out;
  char line[512];
  std::snprintf(line, sizeof line,
                "baseline check: %d ok, %d improved, %d regressed, %d "
                "missing, %d new -> %s\n",
                res.num_ok, res.num_improved, res.num_regressed,
                res.num_missing, res.num_new,
                res.Passed() ? "PASS" : "FAIL");
  out += line;

  // Per-record detail for everything that is not plain ok.
  for (const RecordDelta& rd : res.records) {
    if (rd.status == RecordDelta::Status::kOk) continue;
    std::snprintf(line, sizeof line, "\n[%s] %s %s\n", StatusWord(rd.status),
                  rd.bench.c_str(), rd.config_text.c_str());
    out += line;
    if (rd.status == RecordDelta::Status::kMissing) {
      out += "  record in baseline but not produced by this run\n";
      continue;
    }
    if (rd.status == RecordDelta::Status::kNew) {
      out += "  record not in baseline (run with --update-baseline to "
             "adopt)\n";
      continue;
    }
    std::snprintf(line, sizeof line, "  %-32s %14s %14s %12s\n", "metric",
                  "baseline", "current", "delta");
    out += line;
    for (const MetricDelta& d : rd.deltas) {
      if (!d.regressed && !d.improved && d.delta_pct == 0.0) continue;
      std::snprintf(line, sizeof line, "  %-32s %14s %14s %12s%s\n",
                    d.name.c_str(), FmtNum(d.base).c_str(),
                    FmtNum(d.cur).c_str(), FmtPct(d.delta_pct).c_str(),
                    d.regressed ? "  <-- regression"
                    : d.improved ? "  (improvement)"
                                 : "");
      out += line;
    }
  }

  // Worst offenders across all records, ranked by |delta|.
  struct Offender {
    const RecordDelta* rec;
    const MetricDelta* metric;
  };
  std::vector<Offender> worst;
  for (const RecordDelta& rd : res.records)
    for (const MetricDelta& d : rd.deltas)
      if (d.regressed) worst.push_back({&rd, &d});
  if (!worst.empty()) {
    std::stable_sort(worst.begin(), worst.end(),
                     [](const Offender& a, const Offender& b) {
                       return std::fabs(a.metric->delta_pct) >
                              std::fabs(b.metric->delta_pct);
                     });
    out += "\ntop regressions:\n";
    const int n = std::min<int>(max_regressions,
                                static_cast<int>(worst.size()));
    for (int i = 0; i < n; ++i) {
      std::snprintf(line, sizeof line, "  %2d. %-24s %-32s %12s\n", i + 1,
                    worst[static_cast<std::size_t>(i)].rec->bench.c_str(),
                    worst[static_cast<std::size_t>(i)].metric->name.c_str(),
                    FmtPct(worst[static_cast<std::size_t>(i)]
                               .metric->delta_pct)
                        .c_str());
      out += line;
    }
  }
  return out;
}

}  // namespace benchlib
