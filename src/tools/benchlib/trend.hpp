// Cross-run performance trend tracking over a bench history log: a
// concatenation of consolidated suite results (pnc-bench-suite-v1 header +
// pnc-bench-v1 records) appended run after run by `ncbench --history=PATH`.
// The trend engine splits the log back into runs, threads each metric of
// each (bench, config) identity through the runs in order, and flags series
// whose latest value drifted beyond tolerance from the first run in the
// harmful direction (per baseline.hpp's MetricDirection).
//
// Rendered by `ncstat --trend=FILE [--tolerance=PCT]`, which shares the
// exit-code contract of the baseline gate: 0 = no flagged drift,
// 1 = at least one metric drifted, 2 = usage / I/O / parse error.
#pragma once

#include <string>
#include <vector>

#include "tools/benchlib/baseline.hpp"
#include "tools/benchlib/records.hpp"

namespace benchlib {

/// One metric of one (bench, config) identity threaded through the history.
struct TrendSeries {
  std::string bench;
  std::string config_text;
  std::string metric;
  Direction direction = Direction::kLowerIsBetter;
  /// Run index (0-based position in the history) of each sample; runs in
  /// which the identity or metric is absent simply contribute no sample.
  std::vector<int> runs;
  std::vector<double> values;  ///< parallel to `runs`
  /// Signed relative change of the last sample vs the first, in percent
  /// ((last-first)/first*100); +/-1e99 when first == 0 and last != 0.
  double drift_pct = 0.0;
  /// Drift beyond tolerance in the harmful direction (needs >= 2 samples).
  bool flagged = false;
};

struct TrendReport {
  int num_runs = 0;
  int num_flagged = 0;
  std::vector<TrendSeries> series;

  [[nodiscard]] bool Passed() const { return num_flagged == 0; }
};

/// Split a history log into its constituent runs. Every
/// pnc-bench-suite-v1 header line starts a new run; record lines before the
/// first header form an implicit headerless run (a plain BENCH_*.json file
/// is therefore a valid one-run history). A marker line that fails to parse
/// is an error, exactly as in ParseResults.
pnc::Result<std::vector<ResultsFile>> ParseHistory(const std::string& text);

/// Read + ParseHistory a history file from the OS filesystem.
pnc::Result<std::vector<ResultsFile>> LoadHistory(const std::string& path);

/// Thread every comparable metric (ComparableMetrics: the record's own
/// numbers plus the iostat-derived "iostat.*" health metrics) through the
/// runs and compute drift. `tolerance_pct` is the allowed harmful relative
/// drift per metric in percent.
TrendReport BuildTrend(const std::vector<ResultsFile>& runs,
                       double tolerance_pct);

/// Render the trend: a summary line, then one row per series with an ASCII
/// sparkline of its trajectory across runs, first/last values, and the
/// drift; flagged series are marked and listed first within their bench.
std::string RenderTrend(const TrendReport& rep);

}  // namespace benchlib
