#include "tools/benchlib/records.hpp"

#include <cctype>
#include <cstdio>
#include <cstdlib>

#include "iostat/schemas.hpp"

namespace benchlib {
namespace {

// Line-level scanner for one JSON object. The pnc-bench-v1 writer
// (bench::JsonObj / bench::Recorder) emits a deterministic flat subset of
// JSON; this parser accepts ordinary JSON objects over that subset — string,
// number, and (raw-captured) nested-object values — which is all the format
// contains.
struct Cursor {
  const char* p;
  const char* end;
  std::string err;

  [[nodiscard]] bool failed() const { return !err.empty(); }
  void Fail(const std::string& what) {
    if (err.empty()) err = what;
  }
  void SkipWs() {
    while (p < end && std::isspace(static_cast<unsigned char>(*p))) ++p;
  }
  bool Eat(char c) {
    SkipWs();
    if (p < end && *p == c) {
      ++p;
      return true;
    }
    Fail(std::string("expected '") + c + "'");
    return false;
  }
  bool Peek(char c) {
    SkipWs();
    return p < end && *p == c;
  }

  std::string ParseString() {
    if (!Eat('"')) return {};
    std::string out;
    while (p < end && *p != '"') {
      if (*p == '\\' && p + 1 < end) {
        ++p;
        switch (*p) {
          case 'n': out += '\n'; break;
          case 't': out += '\t'; break;
          case 'r': out += '\r'; break;
          case 'b': out += '\b'; break;
          case 'f': out += '\f'; break;
          case 'u':
            if (end - p >= 5) {
              out += static_cast<char>(
                  std::strtoul(std::string(p + 1, p + 5).c_str(), nullptr,
                               16));
              p += 4;
            } else {
              Fail("truncated \\u escape");
            }
            break;
          default: out += *p;
        }
      } else {
        out += *p;
      }
      ++p;
    }
    if (p >= end) {
      Fail("unterminated string");
      return {};
    }
    ++p;  // closing quote
    return out;
  }

  double ParseNumber() {
    SkipWs();
    char* num_end = nullptr;
    const double v = std::strtod(p, &num_end);
    if (num_end == p) {
      Fail("expected number");
      return 0.0;
    }
    p = num_end;
    return v;
  }

  /// Captures a balanced {...} object verbatim (string-aware).
  std::string CaptureObject() {
    SkipWs();
    if (p >= end || *p != '{') {
      Fail("expected object");
      return {};
    }
    const char* start = p;
    int depth = 0;
    bool in_string = false;
    while (p < end) {
      const char c = *p;
      if (in_string) {
        if (c == '\\' && p + 1 < end) {
          ++p;
        } else if (c == '"') {
          in_string = false;
        }
      } else if (c == '"') {
        in_string = true;
      } else if (c == '{') {
        ++depth;
      } else if (c == '}') {
        if (--depth == 0) {
          ++p;
          return std::string(start, p);
        }
      }
      ++p;
    }
    Fail("unterminated object");
    return {};
  }

  /// Skip any one value (string, number, object, array, literal).
  void SkipValue() {
    SkipWs();
    if (p >= end) {
      Fail("expected value");
      return;
    }
    if (*p == '"') {
      (void)ParseString();
    } else if (*p == '{') {
      (void)CaptureObject();
    } else if (*p == '[') {
      int depth = 0;
      bool in_string = false;
      while (p < end) {
        const char c = *p;
        if (in_string) {
          if (c == '\\' && p + 1 < end) ++p;
          else if (c == '"') in_string = false;
        } else if (c == '"') {
          in_string = true;
        } else if (c == '[') {
          ++depth;
        } else if (c == ']') {
          if (--depth == 0) {
            ++p;
            return;
          }
        }
        ++p;
      }
      Fail("unterminated array");
    } else {
      while (p < end && *p != ',' && *p != '}' && *p != ']') ++p;
    }
  }
};

// Parses the "metrics" object: every numeric member in file order;
// non-numeric members are skipped.
void ParseMetrics(const std::string& obj_text,
                  std::vector<std::pair<std::string, double>>& out,
                  Cursor& outer) {
  Cursor c{obj_text.data(), obj_text.data() + obj_text.size(), {}};
  if (!c.Eat('{')) return;
  if (!c.Peek('}')) {
    do {
      const std::string key = c.ParseString();
      if (!c.Eat(':')) break;
      c.SkipWs();
      if (c.p < c.end &&
          (*c.p == '-' || std::isdigit(static_cast<unsigned char>(*c.p)))) {
        out.emplace_back(key, c.ParseNumber());
      } else {
        c.SkipValue();
      }
    } while (!c.failed() && c.Eat(','));
    c.err.clear();  // the failed Eat(',') at the last member is expected
  } else {
    c.Eat('}');
  }
  if (c.failed()) outer.Fail("metrics: " + c.err);
}

pnc::Status ParseRecordLine(const std::string& line, Record& rec) {
  Cursor c{line.data(), line.data() + line.size(), {}};
  std::string schema, iostat_text;
  if (!c.Eat('{')) return pnc::Status(pnc::Err::kNotNc, "record: " + c.err);
  do {
    const std::string key = c.ParseString();
    if (!c.Eat(':')) break;
    if (key == "schema") {
      schema = c.ParseString();
    } else if (key == "bench") {
      rec.bench = c.ParseString();
    } else if (key == "config") {
      rec.config_text = c.CaptureObject();
    } else if (key == "metrics") {
      ParseMetrics(c.CaptureObject(), rec.metrics, c);
    } else if (key == "iostat") {
      iostat_text = c.CaptureObject();
    } else {
      c.SkipValue();
    }
  } while (!c.failed() && c.Peek(',') && c.Eat(','));
  if (c.failed()) return pnc::Status(pnc::Err::kNotNc, "record: " + c.err);
  if (schema != iostat::schemas::kBench)
    return pnc::Status(pnc::Err::kNotNc, "record: wrong schema " + schema);
  if (rec.bench.empty() || rec.config_text.empty())
    return pnc::Status(pnc::Err::kNotNc, "record: missing bench/config");
  if (!iostat_text.empty()) {
    auto rep = iostat::ParseReportJson(iostat_text);
    if (rep.ok()) {
      rec.iostat = rep.value();
      rec.has_iostat = true;
    }
  }
  return pnc::Status::Ok();
}

pnc::Status ParseHeaderLine(const std::string& line, SuiteHeader& hdr) {
  Cursor c{line.data(), line.data() + line.size(), {}};
  if (!c.Eat('{')) return pnc::Status(pnc::Err::kNotNc, "header: " + c.err);
  do {
    const std::string key = c.ParseString();
    if (!c.Eat(':')) break;
    if (key == "suite") hdr.suite = c.ParseString();
    else if (key == "git_sha") hdr.git_sha = c.ParseString();
    else if (key == "build") hdr.build = c.ParseString();
    else if (key == "platform") hdr.platform = c.ParseString();
    else if (key == "config") hdr.config_text = c.CaptureObject();
    else c.SkipValue();
  } while (!c.failed() && c.Peek(',') && c.Eat(','));
  if (c.failed()) return pnc::Status(pnc::Err::kNotNc, "header: " + c.err);
  hdr.present = true;
  return pnc::Status::Ok();
}

}  // namespace

pnc::Result<ResultsFile> ParseResults(const std::string& text) {
  ResultsFile out;
  std::size_t pos = 0;
  int lineno = 0;
  while (pos < text.size()) {
    std::size_t nl = text.find('\n', pos);
    if (nl == std::string::npos) nl = text.size();
    const std::string line = text.substr(pos, nl - pos);
    pos = nl + 1;
    ++lineno;
    if (line.find(std::string("\"") + iostat::schemas::kBench + "\"") !=
        std::string::npos) {
      Record rec;
      pnc::Status st = ParseRecordLine(line, rec);
      if (!st.ok())
        return pnc::Status(pnc::Err::kNotNc,
                           "line " + std::to_string(lineno) + ": " +
                               st.message());
      out.records.push_back(std::move(rec));
    } else if (line.find(std::string("\"") + iostat::schemas::kBenchSuite +
                         "\"") != std::string::npos) {
      pnc::Status st = ParseHeaderLine(line, out.header);
      if (!st.ok())
        return pnc::Status(pnc::Err::kNotNc,
                           "line " + std::to_string(lineno) + ": " +
                               st.message());
    }
    // Anything else (human-readable bench output, blank lines) is ignored.
  }
  return out;
}

pnc::Result<ResultsFile> LoadResults(const std::string& path) {
  FILE* f = std::fopen(path.c_str(), "rb");
  if (f == nullptr)
    return pnc::Status(pnc::Err::kIo, "cannot open " + path);
  std::string text;
  char buf[1 << 16];
  std::size_t n;
  while ((n = std::fread(buf, 1, sizeof buf, f)) > 0) text.append(buf, n);
  const bool read_err = std::ferror(f) != 0;
  std::fclose(f);
  if (read_err) return pnc::Status(pnc::Err::kIo, "read error on " + path);
  return ParseResults(text);
}

}  // namespace benchlib
