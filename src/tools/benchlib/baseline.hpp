// Baseline comparison engine behind `ncbench --check` and `ncstat --diff`:
// matches pnc-bench-v1 records by (bench, config), compares every numeric
// metric — bandwidth plus the iostat-derived health metrics (two-phase
// exchange fraction, sieve/two-phase amplification, total pfs bytes, message
// counts) — against a committed baseline, and renders a per-metric delta
// table with the top regressions.
//
// Exit-code contract (shared by ncbench and ncstat --diff, see
// src/tools/cli.hpp): 0 = all records match within tolerance; 1 = at least
// one regression, missing record, or unmatched new record; 2 = usage or I/O
// or parse error.
#pragma once

#include <string>
#include <vector>

#include "tools/benchlib/records.hpp"

namespace benchlib {

/// Whether a bigger value of a metric is better or worse. Derived from the
/// metric name: throughput-like names (ending in "mbps" or "speedup") are
/// higher-is-better; everything else the benches emit (ms, bytes, requests,
/// amplification factors, exchange fractions, message counts) is
/// lower-is-better.
enum class Direction { kHigherIsBetter, kLowerIsBetter };
Direction MetricDirection(const std::string& name);

/// One metric compared across baseline and current.
struct MetricDelta {
  std::string name;
  double base = 0.0;
  double cur = 0.0;
  /// Signed relative change in percent ((cur-base)/base*100); +/-inf encoded
  /// as +/-1e99 when base == 0 and cur != 0.
  double delta_pct = 0.0;
  /// Change in the harmful direction larger than the tolerance.
  bool regressed = false;
  /// Change in the helpful direction larger than the tolerance (reported,
  /// never fatal — regenerate the baseline to lock it in).
  bool improved = false;
};

/// Comparison outcome for one (bench, config) identity.
struct RecordDelta {
  enum class Status {
    kOk,          ///< every metric within tolerance
    kImproved,    ///< no regressions, at least one improvement
    kRegressed,   ///< at least one metric regressed
    kMissing,     ///< in the baseline, absent from the current run
    kNew,         ///< in the current run, absent from the baseline
  };
  std::string bench;
  std::string config_text;
  Status status = Status::kOk;
  std::vector<MetricDelta> deltas;  ///< empty for kMissing / kNew
};

struct CompareResult {
  std::vector<RecordDelta> records;
  int num_ok = 0;
  int num_improved = 0;
  int num_regressed = 0;
  int num_missing = 0;
  int num_new = 0;

  [[nodiscard]] bool Passed() const {
    return num_regressed == 0 && num_missing == 0 && num_new == 0;
  }
  /// kExitOk when Passed(), else kExitCondition (see cli.hpp).
  [[nodiscard]] int ExitCode() const;
};

/// The metric vector the comparator sees for a record: the record's own
/// numeric metrics plus iostat-derived health metrics ("iostat.*") when an
/// iostat report is embedded.
std::vector<std::pair<std::string, double>> ComparableMetrics(
    const Record& rec);

/// Compare `current` against `baseline`. `tolerance_pct` is the allowed
/// relative drift per metric in percent; the default 0 demands exact
/// equality, which the deterministic smoke suite sustains (see
/// bench/suites.cpp).
CompareResult Compare(const ResultsFile& baseline, const ResultsFile& current,
                      double tolerance_pct);

/// Render the comparison: one summary line, then a per-metric delta table
/// for every non-ok record, regressions ranked worst-first (top
/// `max_regressions` rows). Returns the rendered text.
std::string RenderDeltaTable(const CompareResult& res,
                             int max_regressions = 20);

}  // namespace benchlib
