// Parsing for the pnc-bench-v1 results format: the line-oriented JSON that
// bench::Recorder appends (one record per benchmark configuration) plus the
// pnc-bench-suite-v1 header line ncbench writes at the top of a consolidated
// suite file. This is the read side of the contract in bench/bench_common.hpp;
// the baseline comparator (benchlib/baseline.hpp) and `ncstat --diff` are
// built on it.
#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "iostat/report.hpp"
#include "util/status.hpp"

namespace benchlib {

/// One parsed pnc-bench-v1 line.
struct Record {
  std::string bench;        ///< "bench" field (registry name)
  std::string config_text;  ///< raw JSON text of the "config" object
  /// Numeric members of "metrics", in file order. String members are kept in
  /// `config_text`-style raw form only if ever needed; the comparator works
  /// on numbers.
  std::vector<std::pair<std::string, double>> metrics;
  bool has_iostat = false;
  iostat::Report iostat;

  /// Identity for baseline matching: records are matched by what was run
  /// (bench + exact config object), never by position in the file.
  [[nodiscard]] std::string Key() const { return bench + " " + config_text; }
};

/// The suite header line ncbench writes ("pnc-bench-suite-v1"): provenance
/// for a consolidated results file.
struct SuiteHeader {
  bool present = false;
  std::string suite;
  std::string git_sha;
  std::string build;
  std::string platform;
  std::string config_text;  ///< raw JSON of the suite "config" member
};

/// A whole results file: header (if any) + records, non-record lines
/// (human-readable bench output, blank lines) skipped.
struct ResultsFile {
  SuiteHeader header;
  std::vector<Record> records;
};

/// Parse the concatenated text of a results file. Lines that do not carry a
/// pnc-bench-v1 / pnc-bench-suite-v1 schema marker are ignored; a line that
/// carries the marker but fails to parse is an error (the file is corrupt,
/// not merely chatty).
pnc::Result<ResultsFile> ParseResults(const std::string& text);

/// Read + parse a results file from the OS filesystem.
pnc::Result<ResultsFile> LoadResults(const std::string& path);

}  // namespace benchlib
