// Shared command-line parsing for the tool mains (ncverify, ncstat).
//
// The tools follow one exit-code contract (documented in docs/API.md):
//   0  success (ncverify: clean or repaired; ncstat: report produced)
//   1  condition detected (ncverify: torn but recoverable; ncstat: reserved)
//   2  usage error, I/O error, or corrupt/unparseable input
#pragma once

#include <string>
#include <vector>

namespace nctools {

inline constexpr int kExitOk = 0;
inline constexpr int kExitCondition = 1;
inline constexpr int kExitError = 2;

/// Tiny argv scanner: "-q"/"--flag" switches, "--key=value" options, and
/// positionals. Tools declare what they accept by querying Flag()/Value();
/// anything never queried shows up in Unknown(), which mains turn into a
/// usage error instead of silently ignoring a typo.
class Cli {
 public:
  Cli(int argc, char** argv) {
    for (int i = 1; i < argc; ++i) {
      const std::string a = argv[i];
      if (a.size() > 1 && a[0] == '-') {
        const auto eq = a.find('=');
        Entry e;
        e.name = a.substr(0, eq);
        if (eq != std::string::npos) {
          e.value = a.substr(eq + 1);
          e.has_value = true;
        }
        entries_.push_back(std::move(e));
      } else {
        positionals_.push_back(a);
      }
    }
  }

  /// Boolean switch ("--repair", "-q"): true if present without a value.
  bool Flag(const std::string& name) {
    bool found = false;
    for (auto& e : entries_)
      if (e.name == name && !e.has_value) {
        e.queried = true;
        found = true;
      }
    return found;
  }

  /// Valued option ("--report=FILE"); returns `def` when absent. The last
  /// occurrence wins.
  std::string Value(const std::string& name, const std::string& def) {
    std::string v = def;
    for (auto& e : entries_)
      if (e.name == name && e.has_value) {
        e.queried = true;
        v = e.value;
      }
    return v;
  }

  /// True if the option occurred at all (valued or not); counts as queried.
  bool Has(const std::string& name) {
    bool found = false;
    for (auto& e : entries_)
      if (e.name == name) {
        e.queried = true;
        found = true;
      }
    return found;
  }

  [[nodiscard]] const std::vector<std::string>& positionals() const {
    return positionals_;
  }

  /// Option names no Flag()/Value()/Has() call recognized.
  [[nodiscard]] std::vector<std::string> Unknown() const {
    std::vector<std::string> u;
    for (const auto& e : entries_)
      if (!e.queried) u.push_back(e.name);
    return u;
  }

 private:
  struct Entry {
    std::string name;
    std::string value;
    bool has_value = false;
    bool queried = false;
  };
  std::vector<Entry> entries_;
  std::vector<std::string> positionals_;
};

}  // namespace nctools
