#include "tools/cdl.hpp"

#include <cctype>
#include <cstring>
#include <cmath>
#include <sstream>

namespace nctools {

using ncformat::Attr;
using ncformat::NcType;

// ------------------------------------------------------------------- dump

namespace {

std::string EscapeString(std::string_view s) {
  std::string out = "\"";
  for (char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\t': out += "\\t"; break;
      case '\0': out += "\\0"; break;
      default: out += c;
    }
  }
  out += '"';
  return out;
}

/// Print one numeric value with ncdump's type suffix convention.
void PrintValue(std::ostringstream& os, NcType t, const std::byte* host,
                std::size_t i) {
  switch (t) {
    case NcType::kByte: {
      signed char v;
      std::memcpy(&v, host + i, 1);
      os << static_cast<int>(v) << 'b';
      break;
    }
    case NcType::kShort: {
      std::int16_t v;
      std::memcpy(&v, host + i * 2, 2);
      os << v << 's';
      break;
    }
    case NcType::kInt: {
      std::int32_t v;
      std::memcpy(&v, host + i * 4, 4);
      os << v;
      break;
    }
    case NcType::kFloat: {
      float v;
      std::memcpy(&v, host + i * 4, 4);
      std::ostringstream tmp;
      tmp.precision(9);
      tmp << v;
      os << tmp.str();
      if (tmp.str().find_first_of(".eE") == std::string::npos) os << '.';
      os << 'f';
      break;
    }
    case NcType::kDouble: {
      double v;
      std::memcpy(&v, host + i * 8, 8);
      std::ostringstream tmp;
      tmp.precision(17);
      tmp << v;
      os << tmp.str();
      if (tmp.str().find_first_of(".eE") == std::string::npos) os << '.';
      break;
    }
    case NcType::kChar:
      break;  // handled as strings by the callers
  }
}

void PrintAttr(std::ostringstream& os, const std::string& owner,
               const Attr& a) {
  os << "\t\t" << owner << ":" << a.name << " = ";
  if (a.type == NcType::kChar) {
    os << EscapeString(a.AsText());
  } else {
    const std::uint64_t n = a.nelems();
    for (std::uint64_t i = 0; i < n; ++i) {
      if (i) os << ", ";
      PrintValue(os, a.type, a.data.data(), i);
    }
  }
  os << " ;\n";
}

}  // namespace

pnc::Result<std::string> DumpCdl(netcdf::Dataset& ds, const std::string& name,
                                 bool with_data) {
  const auto& h = ds.header();
  std::ostringstream os;
  os << "netcdf " << name << " {\n";

  if (!h.dims.empty()) {
    os << "dimensions:\n";
    for (const auto& d : h.dims) {
      if (d.is_unlimited()) {
        os << "\t" << d.name << " = UNLIMITED ; // (" << h.numrecs
           << " currently)\n";
      } else {
        os << "\t" << d.name << " = " << d.len << " ;\n";
      }
    }
  }

  if (!h.vars.empty()) {
    os << "variables:\n";
    for (const auto& v : h.vars) {
      os << "\t" << TypeName(v.type) << " " << v.name;
      if (!v.dimids.empty()) {
        os << "(";
        for (std::size_t i = 0; i < v.dimids.size(); ++i) {
          if (i) os << ", ";
          os << h.dims[static_cast<std::size_t>(v.dimids[i])].name;
        }
        os << ")";
      }
      os << " ;\n";
      for (const auto& a : v.attrs) PrintAttr(os, v.name, a);
    }
  }

  if (!h.gatts.empty()) {
    os << "\n// global attributes:\n";
    for (const auto& a : h.gatts) PrintAttr(os, "", a);
  }

  if (with_data && !h.vars.empty()) {
    os << "data:\n";
    for (int vid = 0; vid < ds.nvars(); ++vid) {
      const auto& v = h.vars[static_cast<std::size_t>(vid)];
      const std::uint64_t n = pnc::ShapeProduct(h.VarShape(vid));
      os << "\n " << v.name << " = ";
      if (n == 0) {
        os << ";\n";
        continue;
      }
      if (v.type == NcType::kChar) {
        std::vector<char> text(n);
        PNC_RETURN_IF_ERROR(ds.GetVar<char>(vid, text));
        os << EscapeString(std::string_view(text.data(), text.size()));
      } else {
        std::vector<double> vals(n);  // widest type reads all numerics
        PNC_RETURN_IF_ERROR(ds.GetVar<double>(vid, vals));
        // Re-render in the variable's own type for faithful suffixes.
        std::vector<std::byte> host(n * TypeSize(v.type));
        switch (v.type) {
          case NcType::kByte:
            for (std::uint64_t i = 0; i < n; ++i) {
              const auto b = static_cast<signed char>(vals[i]);
              std::memcpy(host.data() + i, &b, 1);
            }
            break;
          case NcType::kShort:
            for (std::uint64_t i = 0; i < n; ++i) {
              const auto s = static_cast<std::int16_t>(vals[i]);
              std::memcpy(host.data() + i * 2, &s, 2);
            }
            break;
          case NcType::kInt:
            for (std::uint64_t i = 0; i < n; ++i) {
              const auto x = static_cast<std::int32_t>(vals[i]);
              std::memcpy(host.data() + i * 4, &x, 4);
            }
            break;
          case NcType::kFloat:
            for (std::uint64_t i = 0; i < n; ++i) {
              const auto f = static_cast<float>(vals[i]);
              std::memcpy(host.data() + i * 4, &f, 4);
            }
            break;
          case NcType::kDouble:
            std::memcpy(host.data(), vals.data(), n * 8);
            break;
          case NcType::kChar:
            break;
        }
        for (std::uint64_t i = 0; i < n; ++i) {
          if (i) os << ", ";
          PrintValue(os, v.type, host.data(), i);
        }
      }
      os << " ;\n";
    }
  }
  os << "}\n";
  return os.str();
}

// ------------------------------------------------------------------ parse

namespace {

struct Token {
  enum Kind { kIdent, kNumber, kString, kPunct, kEnd } kind = kEnd;
  std::string text;
  double num = 0;
  NcType num_type = NcType::kInt;  ///< inferred from suffix / decimal point
};

class Lexer {
 public:
  explicit Lexer(std::string_view s) : s_(s) {}

  Token Next() {
    SkipWs();
    Token t;
    if (pos_ >= s_.size()) return t;
    const char c = s_[pos_];
    if (std::isalpha(static_cast<unsigned char>(c)) || c == '_') {
      std::size_t b = pos_;
      while (pos_ < s_.size() &&
             (std::isalnum(static_cast<unsigned char>(s_[pos_])) ||
              s_[pos_] == '_'))
        ++pos_;
      t.kind = Token::kIdent;
      t.text = std::string(s_.substr(b, pos_ - b));
      return t;
    }
    if (std::isdigit(static_cast<unsigned char>(c)) || c == '-' || c == '+' ||
        (c == '.' && pos_ + 1 < s_.size() &&
         std::isdigit(static_cast<unsigned char>(s_[pos_ + 1])))) {
      std::size_t b = pos_;
      bool is_float = false;
      if (s_[pos_] == '-' || s_[pos_] == '+') ++pos_;
      while (pos_ < s_.size()) {
        const char d = s_[pos_];
        if (std::isdigit(static_cast<unsigned char>(d))) {
          ++pos_;
        } else if (d == '.') {
          is_float = true;
          ++pos_;
        } else if (d == 'e' || d == 'E') {
          is_float = true;
          ++pos_;
          if (pos_ < s_.size() && (s_[pos_] == '+' || s_[pos_] == '-')) ++pos_;
        } else {
          break;
        }
      }
      t.kind = Token::kNumber;
      t.num = std::strtod(std::string(s_.substr(b, pos_ - b)).c_str(),
                          nullptr);
      t.num_type = is_float ? NcType::kDouble : NcType::kInt;
      // Type suffix.
      if (pos_ < s_.size()) {
        switch (s_[pos_]) {
          case 'b': case 'B': t.num_type = NcType::kByte; ++pos_; break;
          case 's': case 'S': t.num_type = NcType::kShort; ++pos_; break;
          case 'f': case 'F': t.num_type = NcType::kFloat; ++pos_; break;
          case 'd': case 'D': t.num_type = NcType::kDouble; ++pos_; break;
          case 'l': case 'L': t.num_type = NcType::kInt; ++pos_; break;
          default: break;
        }
      }
      return t;
    }
    if (c == '"') {
      ++pos_;
      std::string out;
      while (pos_ < s_.size() && s_[pos_] != '"') {
        if (s_[pos_] == '\\' && pos_ + 1 < s_.size()) {
          ++pos_;
          switch (s_[pos_]) {
            case 'n': out += '\n'; break;
            case 't': out += '\t'; break;
            case '0': out += '\0'; break;
            default: out += s_[pos_];
          }
        } else {
          out += s_[pos_];
        }
        ++pos_;
      }
      if (pos_ < s_.size()) ++pos_;  // closing quote
      t.kind = Token::kString;
      t.text = std::move(out);
      return t;
    }
    t.kind = Token::kPunct;
    t.text = std::string(1, c);
    ++pos_;
    return t;
  }

 private:
  void SkipWs() {
    for (;;) {
      while (pos_ < s_.size() &&
             std::isspace(static_cast<unsigned char>(s_[pos_])))
        ++pos_;
      if (pos_ + 1 < s_.size() && s_[pos_] == '/' && s_[pos_ + 1] == '/') {
        while (pos_ < s_.size() && s_[pos_] != '\n') ++pos_;
        continue;
      }
      break;
    }
  }

  std::string_view s_;
  std::size_t pos_ = 0;
};

class Parser {
 public:
  Parser(pfs::FileSystem& fs, const std::string& path, std::string_view cdl)
      : fs_(fs), path_(path), lex_(cdl) {
    Advance();
  }

  pnc::Status Run() {
    PNC_RETURN_IF_ERROR(ExpectIdent("netcdf"));
    if (cur_.kind != Token::kIdent) return Err("dataset name");
    Advance();
    PNC_RETURN_IF_ERROR(ExpectPunct("{"));

    auto created = netcdf::Dataset::Create(fs_, path_);
    if (!created.ok()) return created.status();
    ds_ = std::move(created).value();

    while (cur_.kind == Token::kIdent) {
      if (cur_.text == "dimensions") {
        Advance();
        PNC_RETURN_IF_ERROR(ExpectPunct(":"));
        PNC_RETURN_IF_ERROR(Dimensions());
      } else if (cur_.text == "variables") {
        Advance();
        PNC_RETURN_IF_ERROR(ExpectPunct(":"));
        PNC_RETURN_IF_ERROR(Variables());
      } else if (cur_.text == "data") {
        Advance();
        PNC_RETURN_IF_ERROR(ExpectPunct(":"));
        PNC_RETURN_IF_ERROR(ds_.EndDef());
        in_data_ = true;
        PNC_RETURN_IF_ERROR(Data());
      } else {
        return Err("unexpected section '" + cur_.text + "'");
      }
    }
    if (IsPunct(":")) {
      // global attribute block introduced by bare ':' lines is handled in
      // Variables(); reaching here means stray punctuation.
      return Err("unexpected ':'");
    }
    PNC_RETURN_IF_ERROR(ExpectPunct("}"));
    if (!in_data_) PNC_RETURN_IF_ERROR(ds_.EndDef());
    return ds_.Close();
  }

 private:
  pnc::Status Err(const std::string& what) {
    return pnc::Status(pnc::Err::kInvalidArg, "CDL parse: " + what);
  }
  void Advance() { cur_ = lex_.Next(); }
  bool IsPunct(std::string_view p) const {
    return cur_.kind == Token::kPunct && cur_.text == p;
  }
  pnc::Status ExpectPunct(std::string_view p) {
    if (!IsPunct(p)) return Err("expected '" + std::string(p) + "'");
    Advance();
    return pnc::Status::Ok();
  }
  pnc::Status ExpectIdent(std::string_view w) {
    if (cur_.kind != Token::kIdent || cur_.text != w)
      return Err("expected '" + std::string(w) + "'");
    Advance();
    return pnc::Status::Ok();
  }

  pnc::Status Dimensions() {
    while (cur_.kind == Token::kIdent &&
           cur_.text != "variables" && cur_.text != "data") {
      const std::string name = cur_.text;
      Advance();
      PNC_RETURN_IF_ERROR(ExpectPunct("="));
      std::uint64_t len = 0;
      if (cur_.kind == Token::kIdent && cur_.text == "UNLIMITED") {
        Advance();
      } else if (cur_.kind == Token::kNumber) {
        len = static_cast<std::uint64_t>(cur_.num);
        Advance();
      } else {
        return Err("dimension length");
      }
      PNC_RETURN_IF_ERROR(ExpectPunct(";"));
      PNC_RETURN_IF_ERROR(ds_.DefDim(name, len).status());
    }
    return pnc::Status::Ok();
  }

  static bool TypeFromName(const std::string& s, NcType* out) {
    if (s == "byte") *out = NcType::kByte;
    else if (s == "char") *out = NcType::kChar;
    else if (s == "short") *out = NcType::kShort;
    else if (s == "int" || s == "long") *out = NcType::kInt;
    else if (s == "float" || s == "real") *out = NcType::kFloat;
    else if (s == "double") *out = NcType::kDouble;
    else return false;
    return true;
  }

  pnc::Status Variables() {
    for (;;) {
      if (IsPunct(":")) {  // global attribute:  :name = values ;
        Advance();
        PNC_RETURN_IF_ERROR(Attribute(netcdf::kGlobal, ""));
        continue;
      }
      if (cur_.kind != Token::kIdent) break;
      if (cur_.text == "data" || cur_.text == "dimensions") break;
      NcType type;
      if (TypeFromName(cur_.text, &type)) {
        Advance();
        if (cur_.kind != Token::kIdent) return Err("variable name");
        const std::string vname = cur_.text;
        Advance();
        std::vector<std::int32_t> dimids;
        if (IsPunct("(")) {
          Advance();
          while (cur_.kind == Token::kIdent) {
            PNC_ASSIGN_OR_RETURN(int d, ds_.DimId(cur_.text));
            dimids.push_back(d);
            Advance();
            if (IsPunct(",")) Advance();
          }
          PNC_RETURN_IF_ERROR(ExpectPunct(")"));
        }
        PNC_RETURN_IF_ERROR(ExpectPunct(";"));
        PNC_RETURN_IF_ERROR(ds_.DefVar(vname, type, std::move(dimids)).status());
        continue;
      }
      // Variable attribute: varname:attname = values ;
      const std::string vname = cur_.text;
      Advance();
      PNC_RETURN_IF_ERROR(ExpectPunct(":"));
      PNC_ASSIGN_OR_RETURN(int varid, ds_.VarId(vname));
      PNC_RETURN_IF_ERROR(Attribute(varid, vname));
    }
    return pnc::Status::Ok();
  }

  pnc::Status Attribute(int varid, const std::string&) {
    if (cur_.kind != Token::kIdent) return Err("attribute name");
    const std::string aname = cur_.text;
    Advance();
    PNC_RETURN_IF_ERROR(ExpectPunct("="));
    if (cur_.kind == Token::kString) {
      std::string text = cur_.text;
      Advance();
      PNC_RETURN_IF_ERROR(ExpectPunct(";"));
      return ds_.PutAttText(varid, aname, text);
    }
    // Numeric list: the widest suffix wins the attribute's type.
    std::vector<double> vals;
    NcType type = NcType::kInt;
    bool first = true;
    while (cur_.kind == Token::kNumber) {
      vals.push_back(cur_.num);
      if (first || TypeSize(cur_.num_type) > TypeSize(type) ||
          cur_.num_type == NcType::kDouble)
        type = cur_.num_type;
      first = false;
      Advance();
      if (IsPunct(",")) Advance();
    }
    PNC_RETURN_IF_ERROR(ExpectPunct(";"));
    if (vals.empty()) return Err("attribute values");
    return PutTypedAttr(varid, aname, type, vals);
  }

  pnc::Status PutTypedAttr(int varid, const std::string& name, NcType type,
                           const std::vector<double>& vals) {
    switch (type) {
      case NcType::kByte: {
        std::vector<signed char> v(vals.begin(), vals.end());
        return ds_.PutAttValues<signed char>(varid, name, type, v);
      }
      case NcType::kShort: {
        std::vector<std::int16_t> v(vals.begin(), vals.end());
        return ds_.PutAttValues<std::int16_t>(varid, name, type, v);
      }
      case NcType::kInt: {
        std::vector<std::int32_t> v(vals.begin(), vals.end());
        return ds_.PutAttValues<std::int32_t>(varid, name, type, v);
      }
      case NcType::kFloat: {
        std::vector<float> v(vals.begin(), vals.end());
        return ds_.PutAttValues<float>(varid, name, type, v);
      }
      case NcType::kDouble:
        return ds_.PutAttValues<double>(varid, name, type, vals);
      case NcType::kChar:
        break;
    }
    return Err("attribute type");
  }

  pnc::Status Data() {
    while (cur_.kind == Token::kIdent) {
      const std::string vname = cur_.text;
      Advance();
      PNC_RETURN_IF_ERROR(ExpectPunct("="));
      PNC_ASSIGN_OR_RETURN(int varid, ds_.VarId(vname));
      const auto& v = ds_.header().vars[static_cast<std::size_t>(varid)];

      if (v.type == NcType::kChar) {
        std::string text;
        while (cur_.kind == Token::kString) {
          text += cur_.text;
          Advance();
          if (IsPunct(",")) Advance();
        }
        PNC_RETURN_IF_ERROR(ExpectPunct(";"));
        PNC_RETURN_IF_ERROR(PutWhole<char>(varid, text.size(), [&](std::size_t i) {
          return text[i];
        }));
        continue;
      }
      std::vector<double> vals;
      while (cur_.kind == Token::kNumber) {
        vals.push_back(cur_.num);
        Advance();
        if (IsPunct(",")) Advance();
      }
      PNC_RETURN_IF_ERROR(ExpectPunct(";"));
      PNC_RETURN_IF_ERROR(PutWhole<double>(
          varid, vals.size(), [&](std::size_t i) { return vals[i]; }));
    }
    return pnc::Status::Ok();
  }

  template <typename T, typename F>
  pnc::Status PutWhole(int varid, std::size_t n, F value_at) {
    std::vector<T> buf(n);
    for (std::size_t i = 0; i < n; ++i) buf[i] = value_at(i);
    return ds_.PutVar<T>(varid, buf);
  }

  pfs::FileSystem& fs_;
  std::string path_;
  Lexer lex_;
  Token cur_;
  netcdf::Dataset ds_;
  bool in_data_ = false;
};

}  // namespace

pnc::Status GenerateFromCdl(pfs::FileSystem& fs, const std::string& path,
                            std::string_view cdl) {
  return Parser(fs, path, cdl).Run();
}

}  // namespace nctools
