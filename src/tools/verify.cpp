#include "tools/verify.hpp"

#include <algorithm>

#include "format/commit_pfs.hpp"
#include "format/header.hpp"
#include "simmpi/clock.hpp"

namespace nctools {

namespace {

using ncformat::FileState;
using ncformat::Header;

/// Stand-in journal for files that never had one: AnalyzeCommit sees an
/// empty store and takes its no-journal classification path.
class NullCommitIo final : public ncformat::CommitIo {
 public:
  pnc::Status Read(std::uint64_t, pnc::ByteSpan) override {
    return pnc::Status(pnc::Err::kIo, "no journal");
  }
  pnc::Status Write(std::uint64_t, pnc::ConstByteSpan) override {
    return pnc::Status(pnc::Err::kIo, "no journal");
  }
  pnc::Status Sync() override { return pnc::Status::Ok(); }
  std::uint64_t Size() override { return 0; }
};

/// Walk the variable extents the surviving header declares and note
/// anything odd. None of these are corruption by themselves — pfs reads
/// zero-fill past EOF, so a short file is a legal unwritten tail — but they
/// are exactly what an operator wants to see after a crash.
void WalkExtents(const Header& h, std::uint64_t file_size,
                 std::vector<std::string>& notes) {
  struct Span {
    std::uint64_t begin, end;
    const std::string* name;
  };
  std::vector<Span> fixed;
  std::uint64_t rec_begin = 0;
  bool has_rec = false;
  for (std::size_t i = 0; i < h.vars.size(); ++i) {
    const auto& v = h.vars[i];
    if (v.begin < h.data_begin()) {
      notes.push_back("variable '" + v.name +
                      "' begins inside the header region");
      continue;
    }
    if (h.IsRecordVar(static_cast<int>(i))) {
      rec_begin = has_rec ? std::min(rec_begin, v.begin) : v.begin;
      has_rec = true;
    } else {
      fixed.push_back({v.begin, v.begin + v.vsize, &v.name});
    }
  }
  std::sort(fixed.begin(), fixed.end(),
            [](const Span& a, const Span& b) { return a.begin < b.begin; });
  for (std::size_t i = 1; i < fixed.size(); ++i) {
    if (fixed[i].begin < fixed[i - 1].end)
      notes.push_back("variables '" + *fixed[i - 1].name + "' and '" +
                      *fixed[i].name + "' overlap");
  }
  if (has_rec && !fixed.empty() && rec_begin < fixed.back().end)
    notes.push_back("record section begins inside fixed variable '" +
                    *fixed.back().name + "'");
  const std::uint64_t expected = h.FileSize();
  if (file_size < expected)
    notes.push_back("file is " + std::to_string(expected - file_size) +
                    " bytes shorter than the header declares "
                    "(unwritten tail reads as fill)");
}

/// First byte of the data region as the integrity layer anchors it: the
/// lowest variable begin offset (alignment hints can push it past the
/// encoded header size). 0 when no variables exist.
std::uint64_t MinVarBegin(const Header& h) {
  std::uint64_t db = 0;
  bool first = true;
  for (const auto& v : h.vars) {
    if (first || v.begin < db) db = v.begin;
    first = false;
  }
  return first ? 0 : db;
}

}  // namespace

pnc::Result<VerifyResult> VerifyFile(pfs::FileSystem& fs,
                                     const std::string& path,
                                     const VerifyOptions& opts) {
  VerifyResult out;
  simmpi::VirtualClock clock;

  auto pf = fs.Open(path);
  if (!pf.ok()) return pf.status();
  ncformat::PfsCommitIo primary(std::move(pf).value(), &clock);

  ncformat::VerifyReport rep;
  const std::string jpath = ncformat::JournalPath(path);
  if (fs.Exists(jpath)) {
    auto jf = fs.Open(jpath);
    if (!jf.ok()) return jf.status();
    ncformat::PfsCommitIo journal(std::move(jf).value(), &clock);
    auto r = ncformat::AnalyzeCommit(journal, primary);
    if (!r.ok()) return r.status();
    rep = std::move(r).value();
  } else {
    NullCommitIo none;
    auto r = ncformat::AnalyzeCommit(none, primary);
    if (!r.ok()) return r.status();
    rep = std::move(r).value();
  }

  out.state = rep.state;
  out.has_journal = rep.has_journal;
  out.detail = rep.detail;

  if (opts.repair && rep.state == FileState::kTornRecoverable) {
    PNC_RETURN_IF_ERROR(ncformat::RepairFromReport(rep, primary));
    out.repaired = true;
    out.state = FileState::kClean;
  }

  // Extent walk over whichever header survives: the primary for clean (or
  // just-repaired) files, the reconstructed committed image for torn ones.
  std::optional<Header> h;
  if (out.state == FileState::kTornRecoverable &&
      !rep.committed_header.empty()) {
    auto d = Header::Decode(rep.committed_header);
    if (d.ok()) h = std::move(d).value();
  } else if (out.state == FileState::kClean) {
    std::vector<std::byte> bytes(
        std::min<std::uint64_t>(primary.Size(), 64 * 1024));
    if (primary.Read(0, bytes).ok()) {
      auto d = Header::Decode(bytes);
      if (!d.ok() && d.status().code() == pnc::Err::kTrunc &&
          bytes.size() < primary.Size()) {
        bytes.resize(primary.Size());
        if (primary.Read(0, bytes).ok()) d = Header::Decode(bytes);
      }
      if (d.ok()) h = std::move(d).value();
    }
  }
  if (h) WalkExtents(*h, primary.Size(), out.notes);

  // Data scrub: classify every chunk of the data region against the .ncsum
  // sidecar. An untrusted sidecar (missing, torn, or left session-open by a
  // crash) yields an all-unsummed report — degraded coverage is reported,
  // never a false corruption verdict.
  if (opts.data) {
    const std::string spath = ncformat::SumsPath(path);
    std::optional<ncformat::PfsCommitIo> sio;
    ncformat::LoadedSums loaded;
    if (fs.Exists(spath)) {
      auto sf = fs.Open(spath);
      if (!sf.ok()) return sf.status();
      sio.emplace(std::move(sf).value(), &clock);
      auto l = ncformat::LoadSums(*sio);
      if (!l.ok()) return l.status();
      loaded = std::move(l).value();
    }
    const std::uint64_t db = h ? MinVarBegin(*h) : loaded.map.data_begin();
    if (loaded.trusted && h && loaded.map.data_begin() != db) {
      loaded.trusted = false;
      out.notes.push_back(
          "sum sidecar geometry disagrees with the header (stale sidecar?)");
    }
    if (!loaded.trusted || loaded.map.chunk_size() == 0) {
      loaded.map.Clear();
      loaded.map.SetGeometry(ncformat::SumChunkSize(), db);
    }
    const auto raw = [&primary](std::uint64_t off, pnc::ByteSpan b) {
      return primary.Read(off, b);
    };
    auto sr = ncformat::ScrubData(loaded.map, loaded.trusted, primary.Size(),
                                  raw);
    if (!sr.ok()) return sr.status();
    out.scrub = std::move(sr).value();

    // Rebuild: recompute every chunk from the current bytes and commit the
    // table closed — the caller vouches for the data; after this the
    // current bytes are the integrity baseline.
    if (opts.repair && h) {
      if (!sio) {
        auto sf = fs.Create(spath, /*exclusive=*/false);
        if (!sf.ok()) return sf.status();
        sio.emplace(std::move(sf).value(), &clock);
      }
      ncformat::SumsState state;
      PNC_RETURN_IF_ERROR(ncformat::RebuildSums(
          *sio, loaded.map.chunk_size(), db, primary.Size(), raw, &state));
      out.sums_rebuilt = true;
    }
  }
  return out;
}

}  // namespace nctools
