#include "tools/verify.hpp"

#include <algorithm>

#include "format/commit_pfs.hpp"
#include "format/header.hpp"
#include "simmpi/clock.hpp"

namespace nctools {

namespace {

using ncformat::FileState;
using ncformat::Header;

/// Stand-in journal for files that never had one: AnalyzeCommit sees an
/// empty store and takes its no-journal classification path.
class NullCommitIo final : public ncformat::CommitIo {
 public:
  pnc::Status Read(std::uint64_t, pnc::ByteSpan) override {
    return pnc::Status(pnc::Err::kIo, "no journal");
  }
  pnc::Status Write(std::uint64_t, pnc::ConstByteSpan) override {
    return pnc::Status(pnc::Err::kIo, "no journal");
  }
  pnc::Status Sync() override { return pnc::Status::Ok(); }
  std::uint64_t Size() override { return 0; }
};

/// Walk the variable extents the surviving header declares and note
/// anything odd. None of these are corruption by themselves — pfs reads
/// zero-fill past EOF, so a short file is a legal unwritten tail — but they
/// are exactly what an operator wants to see after a crash.
void WalkExtents(const Header& h, std::uint64_t file_size,
                 std::vector<std::string>& notes) {
  struct Span {
    std::uint64_t begin, end;
    const std::string* name;
  };
  std::vector<Span> fixed;
  std::uint64_t rec_begin = 0;
  bool has_rec = false;
  for (std::size_t i = 0; i < h.vars.size(); ++i) {
    const auto& v = h.vars[i];
    if (v.begin < h.data_begin()) {
      notes.push_back("variable '" + v.name +
                      "' begins inside the header region");
      continue;
    }
    if (h.IsRecordVar(static_cast<int>(i))) {
      rec_begin = has_rec ? std::min(rec_begin, v.begin) : v.begin;
      has_rec = true;
    } else {
      fixed.push_back({v.begin, v.begin + v.vsize, &v.name});
    }
  }
  std::sort(fixed.begin(), fixed.end(),
            [](const Span& a, const Span& b) { return a.begin < b.begin; });
  for (std::size_t i = 1; i < fixed.size(); ++i) {
    if (fixed[i].begin < fixed[i - 1].end)
      notes.push_back("variables '" + *fixed[i - 1].name + "' and '" +
                      *fixed[i].name + "' overlap");
  }
  if (has_rec && !fixed.empty() && rec_begin < fixed.back().end)
    notes.push_back("record section begins inside fixed variable '" +
                    *fixed.back().name + "'");
  const std::uint64_t expected = h.FileSize();
  if (file_size < expected)
    notes.push_back("file is " + std::to_string(expected - file_size) +
                    " bytes shorter than the header declares "
                    "(unwritten tail reads as fill)");
}

}  // namespace

pnc::Result<VerifyResult> VerifyFile(pfs::FileSystem& fs,
                                     const std::string& path,
                                     const VerifyOptions& opts) {
  VerifyResult out;
  simmpi::VirtualClock clock;

  auto pf = fs.Open(path);
  if (!pf.ok()) return pf.status();
  ncformat::PfsCommitIo primary(std::move(pf).value(), &clock);

  ncformat::VerifyReport rep;
  const std::string jpath = ncformat::JournalPath(path);
  if (fs.Exists(jpath)) {
    auto jf = fs.Open(jpath);
    if (!jf.ok()) return jf.status();
    ncformat::PfsCommitIo journal(std::move(jf).value(), &clock);
    auto r = ncformat::AnalyzeCommit(journal, primary);
    if (!r.ok()) return r.status();
    rep = std::move(r).value();
  } else {
    NullCommitIo none;
    auto r = ncformat::AnalyzeCommit(none, primary);
    if (!r.ok()) return r.status();
    rep = std::move(r).value();
  }

  out.state = rep.state;
  out.has_journal = rep.has_journal;
  out.detail = rep.detail;

  if (opts.repair && rep.state == FileState::kTornRecoverable) {
    PNC_RETURN_IF_ERROR(ncformat::RepairFromReport(rep, primary));
    out.repaired = true;
    out.state = FileState::kClean;
  }

  // Extent walk over whichever header survives: the primary for clean (or
  // just-repaired) files, the reconstructed committed image for torn ones.
  std::optional<Header> h;
  if (out.state == FileState::kTornRecoverable &&
      !rep.committed_header.empty()) {
    auto d = Header::Decode(rep.committed_header);
    if (d.ok()) h = std::move(d).value();
  } else if (out.state == FileState::kClean) {
    std::vector<std::byte> bytes(
        std::min<std::uint64_t>(primary.Size(), 64 * 1024));
    if (primary.Read(0, bytes).ok()) {
      auto d = Header::Decode(bytes);
      if (!d.ok() && d.status().code() == pnc::Err::kTrunc &&
          bytes.size() < primary.Size()) {
        bytes.resize(primary.Size());
        if (primary.Read(0, bytes).ok()) d = Header::Decode(bytes);
      }
      if (d.ok()) h = std::move(d).value();
    }
  }
  if (h) WalkExtents(*h, primary.Size(), out.notes);
  return out;
}

}  // namespace nctools
