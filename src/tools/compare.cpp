#include "tools/compare.hpp"

#include <cmath>
#include <sstream>

namespace nctools {

using ncformat::Attr;
using ncformat::NcType;

namespace {

std::string Fmt(const char* what, const std::string& name,
                const std::string& detail) {
  std::ostringstream os;
  os << what << " '" << name << "': " << detail;
  return os.str();
}

void CompareAttrLists(const std::vector<Attr>& a, const std::vector<Attr>& b,
                      const std::string& owner, DiffResult& out) {
  for (const auto& aa : a) {
    const Attr* bb = nullptr;
    for (const auto& cand : b)
      if (cand.name == aa.name) bb = &cand;
    if (!bb) {
      out.Note(Fmt("attribute", owner + ":" + aa.name,
                   "missing from second file"));
      continue;
    }
    if (bb->type != aa.type) {
      out.Note(Fmt("attribute", owner + ":" + aa.name, "type differs"));
    } else if (bb->data != aa.data) {
      out.Note(Fmt("attribute", owner + ":" + aa.name, "value differs"));
    }
  }
  for (const auto& bb : b) {
    bool found = false;
    for (const auto& aa : a) found = found || aa.name == bb.name;
    if (!found)
      out.Note(Fmt("attribute", owner + ":" + bb.name,
                   "missing from first file"));
  }
}

pnc::Status CompareVarData(netcdf::Dataset& a, netcdf::Dataset& b, int va,
                           int vb, const DiffOptions& opts, DiffResult& out) {
  const auto& v = a.header().vars[static_cast<std::size_t>(va)];
  const std::uint64_t n = pnc::ShapeProduct(a.header().VarShape(va));
  if (n == 0) return pnc::Status::Ok();

  if (v.type == NcType::kChar) {
    std::vector<char> da(n), db(n);
    PNC_RETURN_IF_ERROR(a.GetVar<char>(va, da));
    PNC_RETURN_IF_ERROR(b.GetVar<char>(vb, db));
    if (da != db) out.Note(Fmt("variable", v.name, "text data differs"));
    return pnc::Status::Ok();
  }
  std::vector<double> da(n), db(n);
  PNC_RETURN_IF_ERROR(a.GetVar<double>(va, da));
  PNC_RETURN_IF_ERROR(b.GetVar<double>(vb, db));
  std::uint64_t mismatches = 0;
  std::uint64_t first = 0;
  double worst = 0.0;
  for (std::uint64_t i = 0; i < n; ++i) {
    const double diff = std::abs(da[i] - db[i]);
    const bool same = (da[i] == db[i]) || diff <= opts.tolerance ||
                      (std::isnan(da[i]) && std::isnan(db[i]));
    if (!same) {
      if (mismatches == 0) first = i;
      worst = std::max(worst, diff);
      ++mismatches;
    }
  }
  if (mismatches > 0) {
    std::ostringstream os;
    os << mismatches << " of " << n << " values differ (first at linear index "
       << first << ", max |delta| " << worst << ")";
    out.Note(Fmt("variable", v.name, os.str()));
  }
  return pnc::Status::Ok();
}

}  // namespace

pnc::Result<DiffResult> CompareDatasets(netcdf::Dataset& a,
                                        netcdf::Dataset& b,
                                        const DiffOptions& opts) {
  DiffResult out;
  const auto& ha = a.header();
  const auto& hb = b.header();

  for (const auto& d : ha.dims) {
    const int id = hb.FindDim(d.name);
    if (id < 0) {
      out.Note(Fmt("dimension", d.name, "missing from second file"));
    } else {
      const auto& e = hb.dims[static_cast<std::size_t>(id)];
      const std::uint64_t la = d.is_unlimited() ? ha.numrecs : d.len;
      const std::uint64_t lb = e.is_unlimited() ? hb.numrecs : e.len;
      if (d.is_unlimited() != e.is_unlimited())
        out.Note(Fmt("dimension", d.name, "UNLIMITED-ness differs"));
      else if (la != lb)
        out.Note(Fmt("dimension", d.name,
                     std::to_string(la) + " vs " + std::to_string(lb)));
    }
  }
  for (const auto& d : hb.dims)
    if (ha.FindDim(d.name) < 0)
      out.Note(Fmt("dimension", d.name, "missing from first file"));

  CompareAttrLists(ha.gatts, hb.gatts, "", out);

  for (std::size_t i = 0; i < ha.vars.size(); ++i) {
    const auto& v = ha.vars[i];
    const int id = hb.FindVar(v.name);
    if (id < 0) {
      out.Note(Fmt("variable", v.name, "missing from second file"));
      continue;
    }
    const auto& w = hb.vars[static_cast<std::size_t>(id)];
    if (v.type != w.type) {
      out.Note(Fmt("variable", v.name, "type differs"));
      continue;
    }
    // Shapes compare by dimension name + current length.
    const auto sa = ha.VarShape(static_cast<int>(i));
    const auto sb = hb.VarShape(id);
    if (sa != sb) {
      out.Note(Fmt("variable", v.name, "shape differs"));
      continue;
    }
    CompareAttrLists(v.attrs, w.attrs, v.name, out);
    if (opts.compare_data) {
      PNC_RETURN_IF_ERROR(
          CompareVarData(a, b, static_cast<int>(i), id, opts, out));
    }
  }
  for (const auto& w : hb.vars)
    if (ha.FindVar(w.name) < 0)
      out.Note(Fmt("variable", w.name, "missing from first file"));

  return out;
}

pnc::Status CopyDataset(pfs::FileSystem& fs, const std::string& src,
                        const std::string& dst, const CopyOptions& opts) {
  PNC_ASSIGN_OR_RETURN(netcdf::Dataset in,
                       netcdf::Dataset::Open(fs, src, /*writable=*/false));
  netcdf::CreateOptions copts;
  copts.use_cdf2 = opts.use_cdf2;
  PNC_ASSIGN_OR_RETURN(netcdf::Dataset out,
                       netcdf::Dataset::Create(fs, dst, copts));

  const auto& h = in.header();
  for (const auto& d : h.dims) {
    PNC_RETURN_IF_ERROR(out.DefDim(d.name, d.len).status());
  }
  for (const auto& a : h.gatts) {
    PNC_RETURN_IF_ERROR(out.PutAtt(netcdf::kGlobal, a));
  }
  for (const auto& v : h.vars) {
    PNC_ASSIGN_OR_RETURN(int vid, out.DefVar(v.name, v.type, v.dimids));
    for (const auto& a : v.attrs) {
      PNC_RETURN_IF_ERROR(out.PutAtt(vid, a));
    }
  }
  PNC_RETURN_IF_ERROR(out.EndDef());

  for (int vid = 0; vid < in.nvars(); ++vid) {
    const auto& v = h.vars[static_cast<std::size_t>(vid)];
    const std::uint64_t n = pnc::ShapeProduct(h.VarShape(vid));
    if (n == 0) continue;
    if (v.type == NcType::kChar) {
      std::vector<char> data(n);
      PNC_RETURN_IF_ERROR(in.GetVar<char>(vid, data));
      PNC_RETURN_IF_ERROR(out.PutVar<char>(vid, data));
    } else {
      std::vector<double> data(n);
      PNC_RETURN_IF_ERROR(in.GetVar<double>(vid, data));
      PNC_RETURN_IF_ERROR(out.PutVar<double>(vid, data));
    }
  }
  return out.Close();
}

}  // namespace nctools
