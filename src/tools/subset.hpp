// ncks-style dataset subsetting (paper §4.3: features netCDF itself lacks
// "can all be achieved by external software such as netCDF Operators").
#pragma once

#include <optional>
#include <string>

#include "netcdf/dataset.hpp"

namespace nctools {

struct SubsetOptions {
  /// Variables to keep (empty = all). Dimension and attribute metadata of
  /// kept variables is always preserved.
  std::vector<std::string> variables;

  /// Inclusive index range on a dimension, NCO's -d dim,min,max.
  struct DimRange {
    std::string dim;
    std::uint64_t min = 0;
    std::uint64_t max = 0;
  };
  std::vector<DimRange> ranges;
};

/// Extract a subset of `src` into `dst`: selected variables, with every
/// constrained dimension trimmed to its range (the unlimited dimension stays
/// unlimited with the selected records). Global attributes are copied.
pnc::Status ExtractSubset(pfs::FileSystem& fs, const std::string& src,
                          const std::string& dst, const SubsetOptions& opts);

}  // namespace nctools
