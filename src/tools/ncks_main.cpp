// ncks — the "kitchen sink" subset extractor, NCO-style.
//
// Usage: ncks [-v var1,var2,...] [-d dim,min,max]... in.nc out.nc
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>

#include "tools/subset.hpp"

int main(int argc, char** argv) {
  nctools::SubsetOptions opts;
  const char* paths[2] = {nullptr, nullptr};
  int npaths = 0;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "-v") == 0 && i + 1 < argc) {
      std::string list = argv[++i];
      std::size_t pos = 0;
      while (pos < list.size()) {
        const auto comma = list.find(',', pos);
        opts.variables.push_back(list.substr(pos, comma - pos));
        if (comma == std::string::npos) break;
        pos = comma + 1;
      }
    } else if (std::strcmp(argv[i], "-d") == 0 && i + 1 < argc) {
      std::string spec = argv[++i];
      nctools::SubsetOptions::DimRange r;
      const auto c1 = spec.find(',');
      const auto c2 = spec.find(',', c1 + 1);
      if (c1 == std::string::npos || c2 == std::string::npos) {
        std::fprintf(stderr, "ncks: bad -d spec '%s'\n", spec.c_str());
        return 2;
      }
      r.dim = spec.substr(0, c1);
      r.min = std::strtoull(spec.c_str() + c1 + 1, nullptr, 10);
      r.max = std::strtoull(spec.c_str() + c2 + 1, nullptr, 10);
      opts.ranges.push_back(std::move(r));
    } else if (npaths < 2) {
      paths[npaths++] = argv[i];
    }
  }
  if (npaths != 2) {
    std::fprintf(stderr,
                 "usage: ncks [-v vars] [-d dim,min,max] in.nc out.nc\n");
    return 2;
  }

  pfs::FileSystem fs;
  if (!fs.AttachDisk(paths[0], paths[0]).ok() ||
      !fs.CreateOnDisk(paths[1], paths[1]).ok()) {
    std::fprintf(stderr, "ncks: cannot open files\n");
    return 2;
  }
  auto st = nctools::ExtractSubset(fs, paths[0], paths[1], opts);
  if (!st.ok()) {
    std::fprintf(stderr, "ncks: %s\n", st.message().c_str());
    return 1;
  }
  return 0;
}
