// ncbench — unified benchmark orchestration and performance-regression
// gating.
//
// Modes:
//   ncbench --list                     show registered benches and suites
//   ncbench --suite=NAME [--json=PATH] run a named suite in-process, writing
//                                      one consolidated results file
//                                      (default BENCH_<suite>.json) whose
//                                      header line records git SHA, build
//                                      flags, platform preset, and the suite
//                                      config
//   ncbench --bench=NAME [flags...]    run one bench; unconsumed flags pass
//                                      through to it
//
// Either mode accepts --trace=PATH (a driver-level bench::Recorder flag):
// span recording is enabled and PATH is rewritten after each configuration
// with a Chrome trace-event timeline, so it ends holding the run's most
// recent configuration.
//
// Baseline gating (with --suite):
//   --check --baseline=PATH [--tolerance=PCT]
//       after the run, match records by (bench, config) against the
//       baseline, compare MB/s and the iostat-derived health metrics, print
//       a per-metric delta table with the top regressions, and exit 1 on any
//       regression, missing record, or unmatched new record.
//   --update-baseline --baseline=PATH
//       write the consolidated results to PATH (how bench/baselines/*.json
//       are (re)generated).
//   --hints=k=v[,k=v]   merged into every entry's hints (entry values first,
//                       so a CLI override wins) — e.g. deliberately shrink
//                       cb_buffer_size to watch the gate fail.
//
// Exit status (shared with ncstat --diff; see src/tools/cli.hpp and
// docs/API.md): 0 = success / within tolerance, 1 = regression or
// missing/new record, 2 = usage, I/O, or parse error.
#include <cstdio>
#include <cstdlib>
#include <string>
#include <vector>

#include "bench/bench_common.hpp"
#include "bench/registry.hpp"
#include "iostat/schemas.hpp"
#include "tools/benchlib/baseline.hpp"
#include "tools/benchlib/records.hpp"
#include "tools/cli.hpp"

#ifndef PNC_GIT_SHA
#define PNC_GIT_SHA "unknown"
#endif
#ifndef PNC_BUILD_DESC
#define PNC_BUILD_DESC "unknown"
#endif

namespace {

int Usage() {
  std::fprintf(
      stderr,
      "usage: ncbench --list\n"
      "       ncbench --suite=NAME [--json=PATH] [--trace=PATH]\n"
      "               [--hints=k=v,...] [--history=PATH]\n"
      "               [--check --baseline=PATH [--tolerance=PCT]]\n"
      "               [--update-baseline --baseline=PATH]\n"
      "       ncbench --bench=NAME [bench flags...] [--json=PATH]\n");
  return nctools::kExitError;
}

int List() {
  std::printf("benches:\n");
  for (const bench::BenchDef* b : bench::AllBenches()) {
    std::printf("  %-24s %s\n", b->name, b->summary);
    if (!b->flags.empty()) {
      std::printf("  %-24s flags:", "");
      for (const auto& f : b->flags) std::printf(" --%s", f.c_str());
      std::printf("\n");
    }
  }
  std::printf("\nsuites:\n");
  for (const bench::Suite& s : bench::Suites())
    std::printf("  %-24s %s (%zu entries)\n", s.name, s.summary,
                s.entries.size());
  return nctools::kExitOk;
}

std::string JsonEscape(const std::string& s) {
  std::string out;
  for (char c : s) {
    if (c == '"' || c == '\\') out += '\\';
    out += c;
  }
  return out;
}

/// The provenance header line of a consolidated suite file
/// (schema pnc-bench-suite-v1).
std::string SuiteHeaderLine(const bench::Suite& suite,
                            const std::string& extra_hints) {
  std::string config = "{\"entries\":[";
  for (std::size_t i = 0; i < suite.entries.size(); ++i) {
    if (i) config += ",";
    config += "{\"bench\":\"" + JsonEscape(suite.entries[i].bench) +
              "\",\"args\":[";
    for (std::size_t j = 0; j < suite.entries[i].args.size(); ++j) {
      if (j) config += ",";
      config += "\"" + JsonEscape(suite.entries[i].args[j]) + "\"";
    }
    config += "]}";
  }
  config += "]";
  if (!extra_hints.empty())
    config += ",\"extra_hints\":\"" + JsonEscape(extra_hints) + "\"";
  config += "}";
  return std::string("{\"schema\":\"") + iostat::schemas::kBenchSuite +
         "\",\"suite\":\"" + suite.name + "\",\"git_sha\":\"" PNC_GIT_SHA
         "\",\"build\":\"" PNC_BUILD_DESC
         "\",\"platform\":\"simulated (per-bench presets: sdsc_bluehorizon, "
         "asci_frost)\",\"config\":" +
         config + "}\n";
}

/// Entry args with the CLI-level --hints merged in: the entry's own hints
/// come first so the CLI override wins inside ApplyHintOverrides.
std::vector<std::string> MergeHints(const std::vector<std::string>& entry,
                                    const std::string& extra) {
  std::vector<std::string> out = entry;
  if (extra.empty()) return out;
  for (auto& a : out) {
    if (a.rfind("--hints=", 0) == 0) {
      a += "," + extra;
      return out;
    }
  }
  out.push_back("--hints=" + extra);
  return out;
}

int RunSuite(const bench::Suite& suite, const std::string& json_path,
             const std::string& trace_path, const std::string& extra_hints) {
  FILE* f = std::fopen(json_path.c_str(), "w");
  if (f == nullptr) {
    std::fprintf(stderr, "ncbench: cannot write %s\n", json_path.c_str());
    return nctools::kExitError;
  }
  const std::string hdr = SuiteHeaderLine(suite, extra_hints);
  const bool ok = std::fwrite(hdr.data(), 1, hdr.size(), f) == hdr.size();
  if (std::fclose(f) != 0 || !ok) {
    std::fprintf(stderr, "ncbench: short write to %s\n", json_path.c_str());
    return nctools::kExitError;
  }

  for (std::size_t i = 0; i < suite.entries.size(); ++i) {
    const bench::SuiteEntry& e = suite.entries[i];
    const bench::BenchDef* def = bench::FindBench(e.bench);
    if (def == nullptr) {
      std::fprintf(stderr, "ncbench: suite %s names unknown bench '%s'\n",
                   suite.name, e.bench);
      return nctools::kExitError;
    }
    std::printf("=== [%zu/%zu] %s ===\n", i + 1, suite.entries.size(),
                def->name);
    std::fflush(stdout);
    const bench::Args args(MergeHints(e.args, extra_hints));
    bench::Recorder rec(json_path, def->name, trace_path);
    const int rc = bench::RunBench(*def, args, rec);
    if (rc != 0) {
      std::fprintf(stderr, "ncbench: bench %s failed (exit %d)\n", def->name,
                   rc);
      return nctools::kExitError;
    }
    std::printf("\n");
  }
  std::printf("ncbench: suite %s -> %s\n", suite.name, json_path.c_str());
  return nctools::kExitOk;
}

/// Append the consolidated results file (header + record lines) to the
/// history log verbatim. The history file is therefore a concatenation of
/// pnc-bench-suite-v1 runs, which is exactly what benchlib::ParseHistory
/// splits on — no separate history schema to version.
int AppendHistory(const std::string& results_path,
                  const std::string& history_path) {
  FILE* in = std::fopen(results_path.c_str(), "rb");
  if (in == nullptr) {
    std::fprintf(stderr, "ncbench: cannot reread %s\n", results_path.c_str());
    return nctools::kExitError;
  }
  std::string text;
  char buf[1 << 16];
  std::size_t n;
  while ((n = std::fread(buf, 1, sizeof buf, in)) > 0) text.append(buf, n);
  const bool read_err = std::ferror(in) != 0;
  std::fclose(in);
  if (read_err) {
    std::fprintf(stderr, "ncbench: read error on %s\n", results_path.c_str());
    return nctools::kExitError;
  }
  FILE* out = std::fopen(history_path.c_str(), "a");
  if (out == nullptr) {
    std::fprintf(stderr, "ncbench: cannot append to %s\n",
                 history_path.c_str());
    return nctools::kExitError;
  }
  const bool wrote = std::fwrite(text.data(), 1, text.size(), out) ==
                     text.size();
  if (std::fclose(out) != 0 || !wrote) {
    std::fprintf(stderr, "ncbench: short write to %s\n", history_path.c_str());
    return nctools::kExitError;
  }
  std::printf("ncbench: appended run to %s\n", history_path.c_str());
  return nctools::kExitOk;
}

int CheckAgainstBaseline(const std::string& baseline_path,
                         const std::string& current_path, double tolerance) {
  auto base = benchlib::LoadResults(baseline_path);
  if (!base.ok()) {
    std::fprintf(stderr, "ncbench: baseline %s: %s\n", baseline_path.c_str(),
                 base.status().message().c_str());
    return nctools::kExitError;
  }
  auto cur = benchlib::LoadResults(current_path);
  if (!cur.ok()) {
    std::fprintf(stderr, "ncbench: results %s: %s\n", current_path.c_str(),
                 cur.status().message().c_str());
    return nctools::kExitError;
  }
  if (base.value().records.empty()) {
    std::fprintf(stderr, "ncbench: baseline %s holds no pnc-bench-v1 records\n",
                 baseline_path.c_str());
    return nctools::kExitError;
  }
  const benchlib::CompareResult res =
      benchlib::Compare(base.value(), cur.value(), tolerance);
  std::fputs(benchlib::RenderDeltaTable(res).c_str(), stdout);
  return res.ExitCode();
}

}  // namespace

int main(int argc, char** argv) {
  nctools::Cli cli(argc, argv);
  if (cli.Flag("--list")) {
    if (!cli.Unknown().empty() || !cli.positionals().empty()) return Usage();
    return List();
  }

  const std::string suite_name = cli.Value("--suite", "");
  const std::string bench_name = cli.Value("--bench", "");
  if ((suite_name.empty() && bench_name.empty()) ||
      (!suite_name.empty() && !bench_name.empty()))
    return Usage();

  if (!bench_name.empty()) {
    // Single-bench mode: every flag except --bench passes through to the
    // bench (RunBench validates against the bench's declared flags).
    const bench::BenchDef* def = bench::FindBench(bench_name);
    if (def == nullptr) {
      std::fprintf(stderr, "ncbench: unknown bench '%s' (see --list)\n",
                   bench_name.c_str());
      return nctools::kExitError;
    }
    std::vector<std::string> pass;
    for (int i = 1; i < argc; ++i) {
      const std::string a = argv[i];
      if (a.rfind("--bench=", 0) != 0) pass.push_back(a);
    }
    const bench::Args args(std::move(pass));
    bench::Recorder rec(args, def->name);
    return bench::RunBench(*def, args, rec) == 0 ? nctools::kExitOk
                                                 : nctools::kExitError;
  }

  const bool check = cli.Flag("--check");
  const bool update = cli.Flag("--update-baseline");
  const std::string baseline = cli.Value("--baseline", "");
  const std::string tolerance_s = cli.Value("--tolerance", "0");
  const std::string hints = cli.Value("--hints", "");
  const std::string trace = cli.Value("--trace", "");
  const std::string history = cli.Value("--history", "");
  std::string json = cli.Value("--json", "");
  if (!cli.Unknown().empty() || !cli.positionals().empty()) return Usage();
  if (check && update) return Usage();
  if ((check || update) && baseline.empty()) return Usage();
  char* tol_end = nullptr;
  const double tolerance = std::strtod(tolerance_s.c_str(), &tol_end);
  if (tol_end == tolerance_s.c_str() || *tol_end != '\0' || tolerance < 0)
    return Usage();

  const bench::Suite* suite = bench::FindSuite(suite_name);
  if (suite == nullptr) {
    std::fprintf(stderr, "ncbench: unknown suite '%s' (see --list)\n",
                 suite_name.c_str());
    return nctools::kExitError;
  }
  if (update)
    json = baseline;  // --update-baseline writes the consolidated file there
  else if (json.empty())
    json = "BENCH_" + suite_name + ".json";

  const int rc = RunSuite(*suite, json, trace, hints);
  if (rc != 0) return rc;
  if (!history.empty()) {
    const int hrc = AppendHistory(json, history);
    if (hrc != nctools::kExitOk) return hrc;
  }
  if (update) {
    std::printf("ncbench: baseline %s updated\n", baseline.c_str());
    return nctools::kExitOk;
  }
  if (check) return CheckAgainstBaseline(baseline, json, tolerance);
  return nctools::kExitOk;
}
