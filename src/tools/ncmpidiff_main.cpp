// ncmpidiff — compare two netCDF files (classic format), like the tool the
// production PnetCDF ships.
//
// Usage: ncmpidiff [-t tolerance] [-h] a.nc b.nc
//   -t   absolute tolerance for floating-point data comparison
//   -h   header (schema + attributes) only, skip data
//
// Exit status: 0 identical, 1 different, 2 usage/IO error.
#include <cstdio>
#include <cstdlib>
#include <cstring>

#include "tools/compare.hpp"

int main(int argc, char** argv) {
  nctools::DiffOptions opts;
  const char* paths[2] = {nullptr, nullptr};
  int npaths = 0;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "-t") == 0 && i + 1 < argc) {
      opts.tolerance = std::atof(argv[++i]);
    } else if (std::strcmp(argv[i], "-h") == 0) {
      opts.compare_data = false;
    } else if (npaths < 2) {
      paths[npaths++] = argv[i];
    }
  }
  if (npaths != 2) {
    std::fprintf(stderr, "usage: ncmpidiff [-t tol] [-h] a.nc b.nc\n");
    return 2;
  }

  pfs::FileSystem fs;
  for (const char* p : paths) {
    if (!fs.AttachDisk(p, p).ok()) {
      std::fprintf(stderr, "ncmpidiff: cannot open %s\n", p);
      return 2;
    }
  }
  auto a = netcdf::Dataset::Open(fs, paths[0], false);
  auto b = netcdf::Dataset::Open(fs, paths[1], false);
  if (!a.ok() || !b.ok()) {
    std::fprintf(stderr, "ncmpidiff: not a netCDF file\n");
    return 2;
  }
  auto r = nctools::CompareDatasets(a.value(), b.value(), opts);
  if (!r.ok()) {
    std::fprintf(stderr, "ncmpidiff: %s\n", r.status().message().c_str());
    return 2;
  }
  for (const auto& d : r.value().differences)
    std::printf("DIFF: %s\n", d.c_str());
  if (r.value().equal) {
    std::printf("Files are identical%s\n",
                opts.compare_data ? "" : " (headers)");
    return 0;
  }
  return 1;
}
