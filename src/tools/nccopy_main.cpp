// nccopy — copy a netCDF file, optionally converting between the classic
// (CDF-1) and 64-bit-offset (CDF-2) variants.
//
// Usage: nccopy [-k 1|2] in.nc out.nc
#include <cstdio>
#include <cstring>

#include "tools/compare.hpp"

int main(int argc, char** argv) {
  nctools::CopyOptions opts;
  const char* paths[2] = {nullptr, nullptr};
  int npaths = 0;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "-k") == 0 && i + 1 < argc) {
      opts.use_cdf2 = std::strcmp(argv[++i], "2") == 0;
    } else if (npaths < 2) {
      paths[npaths++] = argv[i];
    }
  }
  if (npaths != 2) {
    std::fprintf(stderr, "usage: nccopy [-k 1|2] in.nc out.nc\n");
    return 2;
  }

  pfs::FileSystem fs;
  if (!fs.AttachDisk(paths[0], paths[0]).ok() ||
      !fs.CreateOnDisk(paths[1], paths[1]).ok()) {
    std::fprintf(stderr, "nccopy: cannot open files\n");
    return 2;
  }
  auto st = nctools::CopyDataset(fs, paths[0], paths[1], opts);
  if (!st.ok()) {
    std::fprintf(stderr, "nccopy: %s\n", st.message().c_str());
    return 1;
  }
  return 0;
}
