// ncstat — inspect the cross-layer I/O statistics subsystem (iostat).
//
// Modes:
//   ncstat --report=FILE   pretty-print every iostat report found in FILE:
//                          a PNC_IOSTAT_REPORT dump, or a BENCH_*.json file
//                          whose records embed an "iostat" object per line
//                          ("-" reads stdin)
//   ncstat --run           run a synthetic collective workload through the
//                          full pnetcdf -> mpiio -> pfs stack and print the
//                          per-layer breakdown
//   ncstat --diff A B      compare two BENCH_*.json results files record by
//                          record ((bench, config) identity, same engine as
//                          `ncbench --check`); --tolerance=PCT loosens the
//                          per-metric gate (default 0 = exact)
//   ncstat --blackbox=FILE pretty-print a pnc-events-v1 flight-recorder dump
//                          (a hang-watchdog abort, a PNC_FLIGHT_DUMP file,
//                          or "-" for stdin)
//   ncstat --critpath=FILE critical-path analysis of a pnc-events-v1 dump:
//                          per-op straggler-wait / exchange / file-io
//                          decomposition per rank and per pfs server
//   ncstat --advise=FILE   run the rule-based tuning advisor over every
//                          iostat report found in FILE (needs the embedded
//                          pnc-pattern-v1 section for pattern rules)
//   ncstat --heatmap=FILE  render the pnc-pattern-v1 server x virtual-time
//                          utilization grid of every report in FILE
//   ncstat --timeline=FILE render the pnc-timeline-v1 bucketed rate
//                          timelines (per-server bandwidth / queue depth,
//                          per-tenant bandwidth / p99 wait, global rate
//                          tracks) of every report in FILE as sparklines
//   ncstat --health=FILE   print the SLO health verdict embedded in every
//                          report in FILE; exits 1 when any rule was
//                          violated
//   ncstat --trend=FILE    cross-run trend over a bench history log
//                          (`ncbench --history=PATH`): per-metric
//                          trajectories across runs, drift beyond
//                          --tolerance=PCT in the harmful direction flagged
//                          and reflected in exit code 1
//
// Workload options (with --run):
//   --procs=N                  ranks (default 4)
//   --size=MB                  total payload in MiB (default 8)
//   --pattern=contig|strided|random
//                              file access pattern (default contig)
//   --mode=coll|indep          collective or independent data calls
//                              (default coll)
//   --op=write|read            measured operation (default write; read runs
//                              a populating write first and resets counters)
//   --json=PATH                also dump the report JSON ("-" = stdout)
//   --trace=PATH               record spans, write a Chrome trace timeline
//   --blackbox=PATH            dump the flight recorder (pnc-events-v1)
//   --critpath                 print the critical-path decomposition of the
//                              workload's collective ops
//   --advise                   print ranked tuning recommendations for the
//                              workload just run
//   --heatmap                  print the pfs server x time utilization grid
//   --timeline                 record and print the bucketed rate timelines
//                              (enables PNC_IOSTAT_TIMELINE for the run)
//   --health                   evaluate SLO rules (PNC_SLO, default
//                              miss/fault rate > 0) over the run's timeline
//                              and print the verdict; exit 1 on violation
//
// Exit status: 0 success, 1 --diff found differences, 2 usage/IO/parse
// error. See src/tools/cli.hpp and docs/API.md for the contract shared with
// ncverify and ncbench.
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <iostream>
#include <span>
#include <sstream>
#include <string>
#include <vector>

#include "iostat/advise.hpp"
#include "iostat/critpath.hpp"
#include "iostat/events.hpp"
#include "iostat/health.hpp"
#include "iostat/iostat.hpp"
#include "iostat/pattern.hpp"
#include "iostat/report.hpp"
#include "iostat/timeline.hpp"
#include "iostat/trace.hpp"
#include "pnetcdf/dataset.hpp"
#include "simmpi/runtime.hpp"
#include "tools/benchlib/baseline.hpp"
#include "tools/benchlib/records.hpp"
#include "tools/benchlib/trend.hpp"
#include "tools/cli.hpp"

namespace {

int Usage() {
  std::fprintf(stderr,
               "usage: ncstat --report=FILE\n"
               "       ncstat --run [--procs=N] [--size=MB]\n"
               "              [--pattern=contig|strided|random]\n"
               "              [--mode=coll|indep] [--op=write|read]\n"
               "              [--json=PATH] [--trace=PATH]\n"
               "              [--blackbox=PATH] [--critpath]\n"
               "              [--advise] [--heatmap]\n"
               "              [--timeline] [--health]\n"
               "       ncstat --diff A B [--tolerance=PCT]\n"
               "       ncstat --blackbox=FILE\n"
               "       ncstat --critpath=FILE\n"
               "       ncstat --advise=FILE\n"
               "       ncstat --heatmap=FILE\n"
               "       ncstat --timeline=FILE\n"
               "       ncstat --health=FILE\n"
               "       ncstat --trend=FILE [--tolerance=PCT]\n");
  return nctools::kExitError;
}

/// Slurp `path` ("-" = stdin) into `out`; false + message on failure.
bool ReadAll(const std::string& path, std::string* out) {
  if (path == "-") {
    std::ostringstream ss;
    ss << std::cin.rdbuf();
    *out = ss.str();
    return true;
  }
  std::ifstream in(path, std::ios::binary);
  if (!in) {
    std::fprintf(stderr, "ncstat: cannot open %s\n", path.c_str());
    return false;
  }
  std::ostringstream ss;
  ss << in.rdbuf();
  *out = ss.str();
  return true;
}

int BlackboxMode(const std::string& path) {
  std::string text;
  if (!ReadAll(path, &text)) return nctools::kExitError;
  auto parsed = iostat::ParseEventsJson(text);
  if (!parsed.ok()) {
    std::fprintf(stderr, "ncstat: %s: %s\n", path.c_str(),
                 parsed.status().message().c_str());
    return nctools::kExitError;
  }
  const iostat::EventDump& d = parsed.value();
  std::printf("flight recorder dump: reason \"%s\", ring capacity %zu, "
              "%zu rank(s)\n",
              d.reason.c_str(), d.capacity, d.ranks.size());
  for (const auto& tail : d.ranks) {
    std::printf("rank %d: %llu recorded, %llu dropped, %zu retained\n",
                tail.rank, static_cast<unsigned long long>(tail.recorded),
                static_cast<unsigned long long>(tail.dropped),
                tail.events.size());
    for (const iostat::Event& e : tail.events) {
      std::printf("  #%llu %-10s t=%.0f ns",
                  static_cast<unsigned long long>(e.seq),
                  iostat::EvName(e.kind), e.t_ns);
      if (e.d_ns > 0) std::printf(" dur=%.0f ns", e.d_ns);
      if (e.req != 0)
        std::printf(" req=%llu", static_cast<unsigned long long>(e.req));
      std::printf(" a0=%llu a1=%llu",
                  static_cast<unsigned long long>(e.a0),
                  static_cast<unsigned long long>(e.a1));
      if (e.detail[0] != '\0') std::printf(" [%s]", e.detail);
      std::printf("\n");
    }
  }
  // Post-mortem: a rank_crash event carries the dead rank's in-flight
  // request ID (a0 is the simmpi op index it died at). Resolve the ID
  // against the api_begin in the same tail so the dump names the API call
  // the rank died inside, not just a number.
  for (const auto& tail : d.ranks) {
    for (const iostat::Event& e : tail.events) {
      if (e.kind != iostat::Ev::kRankCrash) continue;
      std::printf("rank %d crashed at op %llu", tail.rank,
                  static_cast<unsigned long long>(e.a0));
      if (e.req == 0) {
        std::printf(" with no request in flight\n");
        continue;
      }
      const iostat::Event* origin = nullptr;
      for (const iostat::Event& o : tail.events)
        if (o.kind == iostat::Ev::kApiBegin && o.req == e.req) origin = &o;
      if (origin != nullptr)
        std::printf(" inside req=%llu [%s] (began t=%.0f ns)\n",
                    static_cast<unsigned long long>(e.req), origin->detail,
                    origin->t_ns);
      else
        std::printf(" inside req=%llu (origin evicted from the ring)\n",
                    static_cast<unsigned long long>(e.req));
    }
  }
  return nctools::kExitOk;
}

int CritPathFileMode(const std::string& path) {
  std::string text;
  if (!ReadAll(path, &text)) return nctools::kExitError;
  auto parsed = iostat::ParseEventsJson(text);
  if (!parsed.ok()) {
    std::fprintf(stderr, "ncstat: %s: %s\n", path.c_str(),
                 parsed.status().message().c_str());
    return nctools::kExitError;
  }
  const iostat::CritPath cp = iostat::AnalyzeCritPath(parsed.value());
  if (cp.ops.empty()) {
    std::fprintf(stderr,
                 "ncstat: no complete collective ops in the dump (need "
                 "coll_begin/coll_end pairs on every rank)\n");
    return nctools::kExitError;
  }
  std::fputs(iostat::PrettyPrintCritPath(cp).c_str(), stdout);
  return nctools::kExitOk;
}

int DiffMode(const std::string& a, const std::string& b, double tolerance) {
  auto base = benchlib::LoadResults(a);
  if (!base.ok()) {
    std::fprintf(stderr, "ncstat: %s: %s\n", a.c_str(),
                 base.status().message().c_str());
    return nctools::kExitError;
  }
  auto cur = benchlib::LoadResults(b);
  if (!cur.ok()) {
    std::fprintf(stderr, "ncstat: %s: %s\n", b.c_str(),
                 cur.status().message().c_str());
    return nctools::kExitError;
  }
  if (base.value().records.empty() && cur.value().records.empty()) {
    std::fprintf(stderr, "ncstat: no pnc-bench-v1 records in %s or %s\n",
                 a.c_str(), b.c_str());
    return nctools::kExitError;
  }
  const benchlib::CompareResult res =
      benchlib::Compare(base.value(), cur.value(), tolerance);
  std::fputs(benchlib::RenderDeltaTable(res).c_str(), stdout);
  return res.ExitCode();
}

int ReportMode(const std::string& path) {
  std::string text;
  if (!ReadAll(path, &text)) return nctools::kExitError;

  // One report per line (PNC_IOSTAT_REPORT dumps and bench records are both
  // line-oriented); fall back to scanning the whole buffer once.
  std::vector<iostat::Report> reports;
  std::istringstream lines(text);
  std::string line;
  while (std::getline(lines, line)) {
    auto r = iostat::ParseReportJson(line);
    if (r.ok()) reports.push_back(r.value());
  }
  if (reports.empty()) {
    auto r = iostat::ParseReportJson(text);
    if (r.ok()) reports.push_back(r.value());
  }
  if (reports.empty()) {
    std::fprintf(stderr, "ncstat: no pnc-iostat-v1 report found in %s\n",
                 path.c_str());
    return nctools::kExitError;
  }
  for (std::size_t i = 0; i < reports.size(); ++i) {
    if (reports.size() > 1)
      std::printf("%s--- record %zu of %zu ---\n", i ? "\n" : "", i + 1,
                  reports.size());
    std::fputs(iostat::PrettyPrint(reports[i]).c_str(), stdout);
  }
  return nctools::kExitOk;
}

/// `--advise=FILE` / `--heatmap=FILE`: run the tuning advisor and/or render
/// the server x time heatmap over every iostat report found in FILE (same
/// line-oriented discovery as --report). Reports without an embedded
/// pnc-pattern-v1 section still get counter-based advice; the heatmap then
/// reports that no pattern data was recorded.
int AdviseFileMode(const std::string& path, bool do_advise, bool do_heatmap) {
  std::string text;
  if (!ReadAll(path, &text)) return nctools::kExitError;
  std::vector<iostat::Report> reports;
  std::istringstream lines(text);
  std::string line;
  while (std::getline(lines, line)) {
    auto r = iostat::ParseReportJson(line);
    if (r.ok()) reports.push_back(r.value());
  }
  if (reports.empty()) {
    auto r = iostat::ParseReportJson(text);
    if (r.ok()) reports.push_back(r.value());
  }
  if (reports.empty()) {
    std::fprintf(stderr, "ncstat: no pnc-iostat-v1 report found in %s\n",
                 path.c_str());
    return nctools::kExitError;
  }
  for (std::size_t i = 0; i < reports.size(); ++i) {
    if (reports.size() > 1)
      std::printf("%s--- record %zu of %zu ---\n", i ? "\n" : "", i + 1,
                  reports.size());
    if (do_heatmap)
      std::fputs(iostat::RenderHeatmap(reports[i].pattern).c_str(), stdout);
    if (do_advise)
      std::fputs(iostat::PrettyPrintAdvice(iostat::Advise(reports[i])).c_str(),
                 stdout);
  }
  return nctools::kExitOk;
}

/// `--timeline=FILE` / `--health=FILE`: render the embedded pnc-timeline-v1
/// section (sparkline timelines and/or the SLO verdict) of every iostat
/// report found in FILE. Returns kExitCondition when --health finds a
/// violated rule in any report.
int TimelineFileMode(const std::string& path, bool do_timeline,
                     bool do_health) {
  std::string text;
  if (!ReadAll(path, &text)) return nctools::kExitError;
  std::vector<iostat::Report> reports;
  std::istringstream lines(text);
  std::string line;
  while (std::getline(lines, line)) {
    auto r = iostat::ParseReportJson(line);
    if (r.ok()) reports.push_back(r.value());
  }
  if (reports.empty()) {
    auto r = iostat::ParseReportJson(text);
    if (r.ok()) reports.push_back(r.value());
  }
  if (reports.empty()) {
    std::fprintf(stderr, "ncstat: no pnc-iostat-v1 report found in %s\n",
                 path.c_str());
    return nctools::kExitError;
  }
  bool violated = false;
  for (std::size_t i = 0; i < reports.size(); ++i) {
    if (reports.size() > 1)
      std::printf("%s--- record %zu of %zu ---\n", i ? "\n" : "", i + 1,
                  reports.size());
    if (do_timeline)
      std::fputs(iostat::RenderTimeline(reports[i].timeline).c_str(), stdout);
    if (do_health) {
      std::fputs(iostat::RenderHealth(reports[i].timeline.health).c_str(),
                 stdout);
      if (reports[i].timeline.health.total_violations > 0) violated = true;
    }
  }
  return do_health && violated ? nctools::kExitCondition : nctools::kExitOk;
}

/// `--trend=FILE`: per-metric trajectories across the runs of a bench
/// history log. Exit 1 when any metric drifted beyond tolerance in the
/// harmful direction.
int TrendMode(const std::string& path, double tolerance) {
  auto runs = benchlib::LoadHistory(path);
  if (!runs.ok()) {
    std::fprintf(stderr, "ncstat: %s: %s\n", path.c_str(),
                 runs.status().message().c_str());
    return nctools::kExitError;
  }
  if (runs.value().empty()) {
    std::fprintf(stderr, "ncstat: no bench runs found in %s\n", path.c_str());
    return nctools::kExitError;
  }
  const benchlib::TrendReport rep =
      benchlib::BuildTrend(runs.value(), tolerance);
  std::fputs(benchlib::RenderTrend(rep).c_str(), stdout);
  return rep.Passed() ? nctools::kExitOk : nctools::kExitCondition;
}

int RunMode(nctools::Cli& cli) {
  const int procs =
      std::max(1, std::atoi(cli.Value("--procs", "4").c_str()));
  const std::uint64_t mb = static_cast<std::uint64_t>(
      std::max(1, std::atoi(cli.Value("--size", "8").c_str())));
  const std::string pattern = cli.Value("--pattern", "contig");
  const std::string mode = cli.Value("--mode", "coll");
  const std::string op = cli.Value("--op", "write");
  const std::string json = cli.Value("--json", "");
  const std::string trace = cli.Value("--trace", "");
  const std::string blackbox = cli.Value("--blackbox", "");
  const bool critpath = cli.Has("--critpath");
  const bool advise = cli.Flag("--advise");
  const bool heatmap = cli.Flag("--heatmap");
  const bool timeline = cli.Flag("--timeline");
  const bool health = cli.Flag("--health");
  if ((pattern != "contig" && pattern != "strided" && pattern != "random") ||
      (mode != "coll" && mode != "indep") ||
      (op != "write" && op != "read"))
    return Usage();
  const bool indep = mode == "indep";
  if (!trace.empty()) iostat::Registry::Get().SetSpansEnabled(true);
  // Both views need the bucketed sampler; --health without --timeline still
  // records (the verdict is computed from the buckets) but prints only the
  // verdict. SLO rules come from PNC_SLO (SloRulesFromEnv default:
  // any deadline miss / any injected fault violates).
  if (timeline || health) iostat::TimelineRegistry::Get().SetEnabled(true);

  const std::uint64_t total_elems = (mb << 20) / 8;
  const std::uint64_t per =
      total_elems / static_cast<std::uint64_t>(procs);
  const bool is_read = op == "read";
  std::string fail_why;

  pfs::FileSystem fs;
  simmpi::Run(procs, [&](simmpi::Comm& comm) {
    auto dsr =
        pnetcdf::Dataset::Create(comm, fs, "ncstat.nc", simmpi::NullInfo());
    if (!dsr.ok()) {
      if (comm.rank() == 0) fail_why = dsr.status().message();
      return;
    }
    auto ds = std::move(dsr).value();
    std::uint64_t start[2], count[2];
    int v;
    if (pattern == "contig" || pattern == "random") {
      // u(total): each rank one contiguous slice. "random" revisits that
      // slice as 16 equal chunks in a permuted order so consecutive calls
      // have changing gaps (classified random by the pattern profiler).
      const int xd = ds.DefDim("x", total_elems).value();
      v = ds.DefVar("u", ncformat::NcType::kDouble, {xd}).value();
      start[0] = per * static_cast<std::uint64_t>(comm.rank());
      count[0] = per;
    } else {
      // m(rows, procs): each rank one column — fully interleaved at the
      // file, the pattern that exercises sieving and two-phase exchange.
      const int rd = ds.DefDim("row", per).value();
      const int cd =
          ds.DefDim("col", static_cast<std::uint64_t>(procs)).value();
      v = ds.DefVar("m", ncformat::NcType::kDouble, {rd, cd}).value();
      start[0] = 0;
      start[1] = static_cast<std::uint64_t>(comm.rank());
      count[0] = per;
      count[1] = 1;
    }
    if (pnc::Status es = ds.EndDef(); !es.ok()) {
      if (comm.rank() == 0) fail_why = es.message();
      return;
    }
    std::vector<double> mine(per, 1.0);
    const std::size_t nd = pattern == "strided" ? 2 : 1;
    // One pass over the rank's region with the selected pattern and mode.
    // "random" issues 16 chunk accesses at permuted slots ((j*5+3) mod 16,
    // gcd(5,16)=1 covers every slot); every rank makes the same number of
    // calls so collective data ops stay aligned across ranks.
    auto do_op = [&](bool wr) -> pnc::Status {
      pnc::Status st = pnc::Status::Ok();
      if (indep) st = ds.BeginIndepData();
      if (st.ok() && pattern == "random") {
        const std::uint64_t chunk = std::max<std::uint64_t>(1, per / 16);
        for (int j = 0; j < 16 && st.ok(); ++j) {
          const std::uint64_t slot = static_cast<std::uint64_t>(j * 5 + 3) % 16;
          std::uint64_t s0 = start[0] + slot * chunk;
          std::uint64_t c0 = slot == 15 ? per - 15 * chunk : chunk;
          if (s0 >= start[0] + per) {  // tiny --size degenerates gracefully
            s0 = start[0];
            c0 = 1;
          }
          const std::span<const std::uint64_t> s(&s0, 1), c(&c0, 1);
          const std::span<double> buf(mine.data(), c0);
          if (wr)
            st = indep ? ds.PutVara<double>(v, s, c, buf)
                       : ds.PutVaraAll<double>(v, s, c, buf);
          else
            st = indep ? ds.GetVara<double>(v, s, c, buf)
                       : ds.GetVaraAll<double>(v, s, c, buf);
        }
      } else if (st.ok()) {
        const std::span<const std::uint64_t> sp(start, nd), cp(count, nd);
        if (wr)
          st = indep ? ds.PutVara<double>(v, sp, cp, mine)
                     : ds.PutVaraAll<double>(v, sp, cp, mine);
        else
          st = indep ? ds.GetVara<double>(v, sp, cp, mine)
                     : ds.GetVaraAll<double>(v, sp, cp, mine);
      }
      if (indep) {
        const pnc::Status es = ds.EndIndepData();
        if (st.ok()) st = es;
      }
      return st;
    };
    pnc::Status st = do_op(/*wr=*/true);
    if (is_read && st.ok()) {
      // Drop the populating write from the report: read stats only.
      comm.Barrier();
      if (comm.rank() == 0) iostat::Registry::Get().Reset();
      comm.Barrier();
      iostat::Registry::BindRank(comm.rank());
      st = do_op(/*wr=*/false);
    }
    if (!st.ok() && comm.rank() == 0) fail_why = st.message();
    (void)ds.Close();
  });
  if (!fail_why.empty()) {
    std::fprintf(stderr, "ncstat: workload failed: %s\n", fail_why.c_str());
    return nctools::kExitError;
  }

  const iostat::Report rep = iostat::BuildReport();
  std::printf("ncstat: %s %s %s, %d ranks, %llu MiB total\n", mode.c_str(),
              pattern.c_str(), op.c_str(), procs,
              static_cast<unsigned long long>(mb));
  std::fputs(iostat::PrettyPrint(rep).c_str(), stdout);
  if (heatmap) std::fputs(iostat::RenderHeatmap(rep.pattern).c_str(), stdout);
  if (timeline)
    std::fputs(iostat::RenderTimeline(rep.timeline).c_str(), stdout);
  if (health)
    std::fputs(iostat::RenderHealth(rep.timeline.health).c_str(), stdout);
  if (advise)
    std::fputs(iostat::PrettyPrintAdvice(iostat::Advise(rep)).c_str(), stdout);

  if (!json.empty()) {
    const std::string out = iostat::ToJson(rep) + "\n";
    if (json == "-") {
      std::fwrite(out.data(), 1, out.size(), stdout);
    } else if (FILE* f = std::fopen(json.c_str(), "w")) {
      std::fwrite(out.data(), 1, out.size(), f);
      std::fclose(f);
    } else {
      std::fprintf(stderr, "ncstat: cannot write %s\n", json.c_str());
      return nctools::kExitError;
    }
  }
  if (!trace.empty()) {
    const pnc::Status ts = iostat::WriteChromeTrace(trace, &rep.timeline);
    if (!ts.ok()) {
      std::fprintf(stderr, "ncstat: %s\n", ts.message().c_str());
      return nctools::kExitError;
    }
  }
  if (!blackbox.empty()) {
    const std::string out = iostat::EventsToJson("ncstat-run") + "\n";
    if (blackbox == "-") {
      std::fwrite(out.data(), 1, out.size(), stdout);
    } else if (FILE* f = std::fopen(blackbox.c_str(), "w")) {
      std::fwrite(out.data(), 1, out.size(), f);
      std::fclose(f);
    } else {
      std::fprintf(stderr, "ncstat: cannot write %s\n", blackbox.c_str());
      return nctools::kExitError;
    }
  }
  if (critpath) {
    const iostat::CritPath cp =
        iostat::AnalyzeCritPath(iostat::FlightRecorder::Get().Collect());
    if (cp.ops.empty()) {
      std::fprintf(stderr,
                   "ncstat: no collective ops recorded (flight recorder "
                   "disabled? check PNC_IOSTAT / PNC_FLIGHT)\n");
      return nctools::kExitError;
    }
    std::fputs(iostat::PrettyPrintCritPath(cp).c_str(), stdout);
  }
  if (health && rep.timeline.health.total_violations > 0)
    return nctools::kExitCondition;
  return nctools::kExitOk;
}

}  // namespace

int main(int argc, char** argv) {
  nctools::Cli cli(argc, argv);
  const std::string report = cli.Value("--report", "");
  const bool run = cli.Flag("--run");
  if (cli.Flag("--diff")) {
    const std::string tol_s = cli.Value("--tolerance", "0");
    char* tol_end = nullptr;
    const double tolerance = std::strtod(tol_s.c_str(), &tol_end);
    if (run || !report.empty() || !cli.Unknown().empty() ||
        cli.positionals().size() != 2 || tol_end == tol_s.c_str() ||
        *tol_end != '\0' || tolerance < 0)
      return Usage();
    return DiffMode(cli.positionals()[0], cli.positionals()[1], tolerance);
  }
  if (run) {
    // Mark the workload options as recognized, then reject typos before
    // spending time on the workload itself.
    for (const char* k :
         {"--procs", "--size", "--pattern", "--mode", "--op", "--json",
          "--trace", "--blackbox", "--critpath", "--advise", "--heatmap",
          "--timeline", "--health"})
      (void)cli.Has(k);
    if (!cli.Unknown().empty() || !cli.positionals().empty()) return Usage();
    return RunMode(cli);
  }
  const std::string blackbox = cli.Value("--blackbox", "");
  const std::string critpath = cli.Value("--critpath", "");
  if (!blackbox.empty()) {
    if (!report.empty() || !critpath.empty() || !cli.Unknown().empty() ||
        !cli.positionals().empty())
      return Usage();
    return BlackboxMode(blackbox);
  }
  if (!critpath.empty()) {
    if (!report.empty() || !cli.Unknown().empty() ||
        !cli.positionals().empty())
      return Usage();
    return CritPathFileMode(critpath);
  }
  const std::string advise = cli.Value("--advise", "");
  const std::string heatmap = cli.Value("--heatmap", "");
  if (!advise.empty() || !heatmap.empty()) {
    // --advise=FILE and --heatmap=FILE combine only when they name the
    // same dump; each record then gets its heatmap above its advice.
    if (!report.empty() || !cli.Unknown().empty() ||
        !cli.positionals().empty() ||
        (!advise.empty() && !heatmap.empty() && advise != heatmap))
      return Usage();
    return AdviseFileMode(advise.empty() ? heatmap : advise, !advise.empty(),
                          !heatmap.empty());
  }
  const std::string timeline = cli.Value("--timeline", "");
  const std::string health = cli.Value("--health", "");
  if (!timeline.empty() || !health.empty()) {
    // Same combination rule as --advise/--heatmap: one dump, both views.
    if (!report.empty() || !cli.Unknown().empty() ||
        !cli.positionals().empty() ||
        (!timeline.empty() && !health.empty() && timeline != health))
      return Usage();
    return TimelineFileMode(timeline.empty() ? health : timeline,
                            !timeline.empty(), !health.empty());
  }
  const std::string trend = cli.Value("--trend", "");
  if (!trend.empty()) {
    const std::string tol_s = cli.Value("--tolerance", "0");
    char* tol_end = nullptr;
    const double tolerance = std::strtod(tol_s.c_str(), &tol_end);
    if (!report.empty() || !cli.Unknown().empty() ||
        !cli.positionals().empty() || tol_end == tol_s.c_str() ||
        *tol_end != '\0' || tolerance < 0)
      return Usage();
    return TrendMode(trend, tolerance);
  }
  if (report.empty() || !cli.Unknown().empty() || !cli.positionals().empty())
    return Usage();
  return ReportMode(report);
}
