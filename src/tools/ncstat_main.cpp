// ncstat — inspect the cross-layer I/O statistics subsystem (iostat).
//
// Modes:
//   ncstat --report=FILE   pretty-print every iostat report found in FILE:
//                          a PNC_IOSTAT_REPORT dump, or a BENCH_*.json file
//                          whose records embed an "iostat" object per line
//                          ("-" reads stdin)
//   ncstat --run           run a synthetic collective workload through the
//                          full pnetcdf -> mpiio -> pfs stack and print the
//                          per-layer breakdown
//   ncstat --diff A B      compare two BENCH_*.json results files record by
//                          record ((bench, config) identity, same engine as
//                          `ncbench --check`); --tolerance=PCT loosens the
//                          per-metric gate (default 0 = exact)
//
// Workload options (with --run):
//   --procs=N                  ranks (default 4)
//   --size=MB                  total payload in MiB (default 8)
//   --pattern=contig|strided   file access pattern (default contig)
//   --op=write|read            measured operation (default write; read runs
//                              a populating write first and resets counters)
//   --json=PATH                also dump the report JSON ("-" = stdout)
//   --trace=PATH               record spans, write a Chrome trace timeline
//
// Exit status: 0 success, 1 --diff found differences, 2 usage/IO/parse
// error. See src/tools/cli.hpp and docs/API.md for the contract shared with
// ncverify and ncbench.
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <iostream>
#include <sstream>
#include <string>
#include <vector>

#include "iostat/iostat.hpp"
#include "iostat/report.hpp"
#include "iostat/trace.hpp"
#include "pnetcdf/dataset.hpp"
#include "simmpi/runtime.hpp"
#include "tools/benchlib/baseline.hpp"
#include "tools/benchlib/records.hpp"
#include "tools/cli.hpp"

namespace {

int Usage() {
  std::fprintf(stderr,
               "usage: ncstat --report=FILE\n"
               "       ncstat --run [--procs=N] [--size=MB]\n"
               "              [--pattern=contig|strided] [--op=write|read]\n"
               "              [--json=PATH] [--trace=PATH]\n"
               "       ncstat --diff A B [--tolerance=PCT]\n");
  return nctools::kExitError;
}

int DiffMode(const std::string& a, const std::string& b, double tolerance) {
  auto base = benchlib::LoadResults(a);
  if (!base.ok()) {
    std::fprintf(stderr, "ncstat: %s: %s\n", a.c_str(),
                 base.status().message().c_str());
    return nctools::kExitError;
  }
  auto cur = benchlib::LoadResults(b);
  if (!cur.ok()) {
    std::fprintf(stderr, "ncstat: %s: %s\n", b.c_str(),
                 cur.status().message().c_str());
    return nctools::kExitError;
  }
  if (base.value().records.empty() && cur.value().records.empty()) {
    std::fprintf(stderr, "ncstat: no pnc-bench-v1 records in %s or %s\n",
                 a.c_str(), b.c_str());
    return nctools::kExitError;
  }
  const benchlib::CompareResult res =
      benchlib::Compare(base.value(), cur.value(), tolerance);
  std::fputs(benchlib::RenderDeltaTable(res).c_str(), stdout);
  return res.ExitCode();
}

int ReportMode(const std::string& path) {
  std::string text;
  if (path == "-") {
    std::ostringstream ss;
    ss << std::cin.rdbuf();
    text = ss.str();
  } else {
    std::ifstream in(path, std::ios::binary);
    if (!in) {
      std::fprintf(stderr, "ncstat: cannot open %s\n", path.c_str());
      return nctools::kExitError;
    }
    std::ostringstream ss;
    ss << in.rdbuf();
    text = ss.str();
  }

  // One report per line (PNC_IOSTAT_REPORT dumps and bench records are both
  // line-oriented); fall back to scanning the whole buffer once.
  std::vector<iostat::Report> reports;
  std::istringstream lines(text);
  std::string line;
  while (std::getline(lines, line)) {
    auto r = iostat::ParseReportJson(line);
    if (r.ok()) reports.push_back(r.value());
  }
  if (reports.empty()) {
    auto r = iostat::ParseReportJson(text);
    if (r.ok()) reports.push_back(r.value());
  }
  if (reports.empty()) {
    std::fprintf(stderr, "ncstat: no pnc-iostat-v1 report found in %s\n",
                 path.c_str());
    return nctools::kExitError;
  }
  for (std::size_t i = 0; i < reports.size(); ++i) {
    if (reports.size() > 1)
      std::printf("%s--- record %zu of %zu ---\n", i ? "\n" : "", i + 1,
                  reports.size());
    std::fputs(iostat::PrettyPrint(reports[i]).c_str(), stdout);
  }
  return nctools::kExitOk;
}

int RunMode(nctools::Cli& cli) {
  const int procs =
      std::max(1, std::atoi(cli.Value("--procs", "4").c_str()));
  const std::uint64_t mb = static_cast<std::uint64_t>(
      std::max(1, std::atoi(cli.Value("--size", "8").c_str())));
  const std::string pattern = cli.Value("--pattern", "contig");
  const std::string op = cli.Value("--op", "write");
  const std::string json = cli.Value("--json", "");
  const std::string trace = cli.Value("--trace", "");
  if ((pattern != "contig" && pattern != "strided") ||
      (op != "write" && op != "read"))
    return Usage();
  if (!trace.empty()) iostat::Registry::Get().SetSpansEnabled(true);

  const std::uint64_t total_elems = (mb << 20) / 8;
  const std::uint64_t per =
      total_elems / static_cast<std::uint64_t>(procs);
  const bool is_read = op == "read";
  bool failed = false;

  pfs::FileSystem fs;
  simmpi::Run(procs, [&](simmpi::Comm& comm) {
    auto dsr =
        pnetcdf::Dataset::Create(comm, fs, "ncstat.nc", simmpi::NullInfo());
    if (!dsr.ok()) {
      if (comm.rank() == 0) failed = true;
      return;
    }
    auto ds = std::move(dsr).value();
    std::uint64_t start[2], count[2];
    int v;
    if (pattern == "contig") {
      // u(total): each rank one contiguous block.
      const int xd = ds.DefDim("x", total_elems).value();
      v = ds.DefVar("u", ncformat::NcType::kDouble, {xd}).value();
      start[0] = per * static_cast<std::uint64_t>(comm.rank());
      count[0] = per;
    } else {
      // m(rows, procs): each rank one column — fully interleaved at the
      // file, the pattern that exercises sieving and two-phase exchange.
      const int rd = ds.DefDim("row", per).value();
      const int cd =
          ds.DefDim("col", static_cast<std::uint64_t>(procs)).value();
      v = ds.DefVar("m", ncformat::NcType::kDouble, {rd, cd}).value();
      start[0] = 0;
      start[1] = static_cast<std::uint64_t>(comm.rank());
      count[0] = per;
      count[1] = 1;
    }
    if (!ds.EndDef().ok()) {
      if (comm.rank() == 0) failed = true;
      return;
    }
    std::vector<double> mine(per, 1.0);
    pnc::Status st = ds.PutVaraAll<double>(v, start, count, mine);
    if (is_read && st.ok()) {
      // Drop the populating write from the report: read stats only.
      comm.Barrier();
      if (comm.rank() == 0) iostat::Registry::Get().Reset();
      comm.Barrier();
      iostat::Registry::BindRank(comm.rank());
      st = ds.GetVaraAll<double>(v, start, count, mine);
    }
    if (!st.ok() && comm.rank() == 0) failed = true;
    (void)ds.Close();
  });
  if (failed) {
    std::fprintf(stderr, "ncstat: workload failed\n");
    return nctools::kExitError;
  }

  const iostat::Report rep = iostat::BuildReport();
  std::printf("ncstat: %s %s, %d ranks, %llu MiB total\n", pattern.c_str(),
              op.c_str(), procs, static_cast<unsigned long long>(mb));
  std::fputs(iostat::PrettyPrint(rep).c_str(), stdout);

  if (!json.empty()) {
    const std::string out = iostat::ToJson(rep) + "\n";
    if (json == "-") {
      std::fwrite(out.data(), 1, out.size(), stdout);
    } else if (FILE* f = std::fopen(json.c_str(), "w")) {
      std::fwrite(out.data(), 1, out.size(), f);
      std::fclose(f);
    } else {
      std::fprintf(stderr, "ncstat: cannot write %s\n", json.c_str());
      return nctools::kExitError;
    }
  }
  if (!trace.empty()) {
    const pnc::Status ts = iostat::WriteChromeTrace(trace);
    if (!ts.ok()) {
      std::fprintf(stderr, "ncstat: %s\n", ts.message().c_str());
      return nctools::kExitError;
    }
  }
  return nctools::kExitOk;
}

}  // namespace

int main(int argc, char** argv) {
  nctools::Cli cli(argc, argv);
  const std::string report = cli.Value("--report", "");
  const bool run = cli.Flag("--run");
  if (cli.Flag("--diff")) {
    const std::string tol_s = cli.Value("--tolerance", "0");
    char* tol_end = nullptr;
    const double tolerance = std::strtod(tol_s.c_str(), &tol_end);
    if (run || !report.empty() || !cli.Unknown().empty() ||
        cli.positionals().size() != 2 || tol_end == tol_s.c_str() ||
        *tol_end != '\0' || tolerance < 0)
      return Usage();
    return DiffMode(cli.positionals()[0], cli.positionals()[1], tolerance);
  }
  if (run) {
    // Mark the workload options as recognized, then reject typos before
    // spending time on the workload itself.
    for (const char* k :
         {"--procs", "--size", "--pattern", "--op", "--json", "--trace"})
      (void)cli.Has(k);
    if (!cli.Unknown().empty() || !cli.positionals().empty()) return Usage();
    return RunMode(cli);
  }
  if (report.empty() || !cli.Unknown().empty() || !cli.positionals().empty())
    return Usage();
  return ReportMode(report);
}
