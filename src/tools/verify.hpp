// ncverify — fsck-style crash-consistency check/repair for classic netCDF
// files written through the commit journal (format/commit.hpp).
#pragma once

#include <optional>
#include <string>
#include <vector>

#include "format/commit.hpp"
#include "format/sums.hpp"
#include "pfs/pfs.hpp"

namespace nctools {

struct VerifyOptions {
  bool repair = false;  ///< roll a torn primary back to the committed state
                        ///< (and, with `data`, rebuild the sum sidecar)
  bool data = false;    ///< scrub the data region against the .ncsum sidecar
};

struct VerifyResult {
  ncformat::FileState state = ncformat::FileState::kCorrupt;
  bool has_journal = false;
  bool repaired = false;   ///< a repair was performed (state is post-repair)
  std::string detail;      ///< classification rationale
  std::vector<std::string> notes;  ///< extent-walk observations (non-fatal)
  /// Data scrub outcome (set only with opts.data): every chunk of the data
  /// region classified clean / corrupt / unsummed against the sidecar.
  std::optional<ncformat::ScrubReport> scrub;
  bool sums_rebuilt = false;  ///< --repair --data recomputed the sidecar
};

/// Classify `path` against its sidecar commit journal: kClean (primary
/// matches the committed state, or no journal and the header decodes),
/// kTornRecoverable (a crash tore the header or record count but the
/// committed state is reconstructible), or kCorrupt. With `opts.repair`, a
/// torn file is rewritten in place to the committed state. After
/// classification the variable extents declared by the surviving header are
/// walked against the file size; anomalies that are legal under pfs
/// zero-fill semantics (e.g. unwritten tails) are reported as notes.
pnc::Result<VerifyResult> VerifyFile(pfs::FileSystem& fs,
                                     const std::string& path,
                                     const VerifyOptions& opts = {});

}  // namespace nctools
