// CDL (Common Data form Language) tools: the ncdump / ncgen pair.
//
// The netCDF ecosystem's interchange text form: `DumpCdl` renders a dataset
// as CDL (what `ncdump` prints), `GenerateFromCdl` parses CDL and writes the
// dataset it describes (what `ncgen -o` builds). Together they give the
// round-trip property  generate(dump(f)) == f  that the tests rely on, and
// the bin/ncdump, bin/ncgen executables make the library's files inspectable
// outside any program.
//
// Supported CDL subset: the classic data model — dimensions (incl.
// UNLIMITED), the six external types (byte, char, short, int, float,
// double), per-variable and global attributes, and an optional data section
// with typed constants (suffixes b/s/f as in ncdump output) and quoted
// strings for char data.
#pragma once

#include <string>

#include "netcdf/dataset.hpp"

namespace nctools {

/// Render `ds` as CDL under the given dataset name. With `with_data`, a
/// data: section listing every variable's values is included.
pnc::Result<std::string> DumpCdl(netcdf::Dataset& ds, const std::string& name,
                                 bool with_data);

/// Parse CDL text and create `path` in `fs` accordingly (schema + data).
pnc::Status GenerateFromCdl(pfs::FileSystem& fs, const std::string& path,
                            std::string_view cdl);

}  // namespace nctools
