// ncgen — build a netCDF file (classic format) from a CDL description.
//
// Usage: ncgen -o out.nc in.cdl
//
// The inverse of ncdump: `ncgen -o copy.nc <(ncdump f.nc)` reproduces f.nc.
#include <cstdio>
#include <cstring>
#include <fstream>
#include <sstream>

#include "tools/cdl.hpp"

int main(int argc, char** argv) {
  const char* out = nullptr;
  const char* in = nullptr;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "-o") == 0 && i + 1 < argc) {
      out = argv[++i];
    } else {
      in = argv[i];
    }
  }
  if (!out || !in) {
    std::fprintf(stderr, "usage: ncgen -o out.nc in.cdl\n");
    return 2;
  }

  std::ifstream f(in);
  if (!f) {
    std::fprintf(stderr, "ncgen: cannot read %s\n", in);
    return 1;
  }
  std::ostringstream ss;
  ss << f.rdbuf();

  pfs::FileSystem fs;
  auto target = fs.CreateOnDisk(out, out);
  if (!target.ok()) {
    std::fprintf(stderr, "ncgen: cannot create %s: %s\n", out,
                 target.status().message().c_str());
    return 1;
  }
  auto st = nctools::GenerateFromCdl(fs, out, ss.str());
  if (!st.ok()) {
    std::fprintf(stderr, "ncgen: %s\n", st.message().c_str());
    return 1;
  }
  return 0;
}
