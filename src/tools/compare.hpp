// Dataset comparison and copying — the ncmpidiff / nccopy ecosystem tools.
#pragma once

#include <string>

#include "netcdf/dataset.hpp"

namespace nctools {

struct DiffOptions {
  double tolerance = 0.0;  ///< absolute tolerance for floating-point data
  bool compare_data = true;
};

struct DiffResult {
  bool equal = true;
  std::vector<std::string> differences;  ///< human-readable, one per finding

  void Note(std::string what) {
    equal = false;
    differences.push_back(std::move(what));
  }
};

/// Compare two datasets: dimensions, variables, attributes, and (optionally)
/// every data value. Mirrors what ncmpidiff/nccmp report.
pnc::Result<DiffResult> CompareDatasets(netcdf::Dataset& a,
                                        netcdf::Dataset& b,
                                        const DiffOptions& opts = {});

struct CopyOptions {
  bool use_cdf2 = true;  ///< output format version
};

/// Copy a dataset, re-encoding it (optionally across CDF versions), like
/// `nccopy`. Schema, attributes, and all data are preserved.
pnc::Status CopyDataset(pfs::FileSystem& fs, const std::string& src,
                        const std::string& dst, const CopyOptions& opts = {});

}  // namespace nctools
