#include "tools/subset.hpp"

#include <algorithm>
#include <map>

namespace nctools {

using ncformat::NcType;

pnc::Status ExtractSubset(pfs::FileSystem& fs, const std::string& src,
                          const std::string& dst, const SubsetOptions& opts) {
  PNC_ASSIGN_OR_RETURN(netcdf::Dataset in,
                       netcdf::Dataset::Open(fs, src, /*writable=*/false));
  const auto& h = in.header();

  // Resolve the per-dimension index windows.
  struct Window {
    std::uint64_t start = 0, count = 0;
  };
  std::vector<Window> window(h.dims.size());
  for (std::size_t d = 0; d < h.dims.size(); ++d) {
    const auto& dim = h.dims[d];
    window[d] = {0, dim.is_unlimited() ? h.numrecs : dim.len};
  }
  for (const auto& r : opts.ranges) {
    const int d = h.FindDim(r.dim);
    if (d < 0) return pnc::Status(pnc::Err::kBadDim, r.dim);
    const std::uint64_t limit = window[static_cast<std::size_t>(d)].count;
    if (r.min > r.max || r.max >= limit)
      return pnc::Status(pnc::Err::kInvalidCoords, r.dim);
    window[static_cast<std::size_t>(d)] = {r.min, r.max - r.min + 1};
  }

  // Which variables survive?
  std::vector<int> keep;
  if (opts.variables.empty()) {
    for (int v = 0; v < in.nvars(); ++v) keep.push_back(v);
  } else {
    for (const auto& name : opts.variables) {
      PNC_ASSIGN_OR_RETURN(int v, in.VarId(name));
      keep.push_back(v);
    }
  }

  PNC_ASSIGN_OR_RETURN(netcdf::Dataset out, netcdf::Dataset::Create(fs, dst));
  // Define trimmed dimensions (all of them: keeps ids simple and matches
  // NCO's default of retaining the dimension list).
  for (std::size_t d = 0; d < h.dims.size(); ++d) {
    const auto len =
        h.dims[d].is_unlimited() ? ncformat::kUnlimitedLen : window[d].count;
    PNC_RETURN_IF_ERROR(out.DefDim(h.dims[d].name, len).status());
  }
  for (const auto& a : h.gatts) PNC_RETURN_IF_ERROR(out.PutAtt(netcdf::kGlobal, a));
  std::map<int, int> new_id;
  for (int v : keep) {
    const auto& var = h.vars[static_cast<std::size_t>(v)];
    PNC_ASSIGN_OR_RETURN(int nv, out.DefVar(var.name, var.type, var.dimids));
    for (const auto& a : var.attrs) PNC_RETURN_IF_ERROR(out.PutAtt(nv, a));
    new_id[v] = nv;
  }
  PNC_RETURN_IF_ERROR(out.EndDef());

  // Copy the selected hyperslab of each kept variable.
  for (int v : keep) {
    const auto& var = h.vars[static_cast<std::size_t>(v)];
    std::vector<std::uint64_t> start, count, zero;
    std::uint64_t n = 1;
    for (auto d : var.dimids) {
      start.push_back(window[static_cast<std::size_t>(d)].start);
      count.push_back(window[static_cast<std::size_t>(d)].count);
      zero.push_back(0);
      n *= count.back();
    }
    if (n == 0) continue;
    if (var.type == NcType::kChar) {
      std::vector<char> data(n);
      PNC_RETURN_IF_ERROR(in.GetVara<char>(v, start, count, data));
      PNC_RETURN_IF_ERROR(out.PutVara<char>(new_id[v], zero, count, data));
    } else {
      std::vector<double> data(n);
      PNC_RETURN_IF_ERROR(in.GetVara<double>(v, start, count, data));
      PNC_RETURN_IF_ERROR(out.PutVara<double>(new_id[v], zero, count, data));
    }
  }
  return out.Close();
}

}  // namespace nctools
