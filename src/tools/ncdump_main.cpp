// ncdump — print a netCDF file (classic format) as CDL.
//
// Usage: ncdump [-h] file.nc
//   -h   header only (no data: section)
//
// Works on real files produced by this library or by any classic-format
// netCDF writer.
#include <cstdio>
#include <cstring>

#include "tools/cdl.hpp"

int main(int argc, char** argv) {
  bool header_only = false;
  const char* path = nullptr;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "-h") == 0) {
      header_only = true;
    } else {
      path = argv[i];
    }
  }
  if (!path) {
    std::fprintf(stderr, "usage: ncdump [-h] file.nc\n");
    return 2;
  }

  pfs::FileSystem fs;
  auto attach = fs.AttachDisk(path, path);
  if (!attach.ok()) {
    std::fprintf(stderr, "ncdump: cannot open %s: %s\n", path,
                 attach.status().message().c_str());
    return 1;
  }
  auto ds = netcdf::Dataset::Open(fs, path, /*writable=*/false);
  if (!ds.ok()) {
    std::fprintf(stderr, "ncdump: %s: %s\n", path,
                 ds.status().message().c_str());
    return 1;
  }

  // Dataset name: basename without extension, as ncdump prints it.
  std::string name = path;
  if (auto slash = name.find_last_of('/'); slash != std::string::npos)
    name = name.substr(slash + 1);
  if (auto dot = name.find_last_of('.'); dot != std::string::npos)
    name = name.substr(0, dot);

  auto cdl = nctools::DumpCdl(ds.value(), name, !header_only);
  if (!cdl.ok()) {
    std::fprintf(stderr, "ncdump: %s\n", cdl.status().message().c_str());
    return 1;
  }
  std::fputs(cdl.value().c_str(), stdout);
  return 0;
}
