// ncverify — fsck for classic netCDF files written through the commit
// journal (<file>.nccommit sidecar).
//
// Usage: ncverify [--repair] [-q] file.nc
//   --repair  roll a torn file back to its last committed state, in place
//   -q        quiet: no per-file report, exit status only
//
// Exit status (the shared tool contract, src/tools/cli.hpp): 0 clean (or
// repaired), 1 torn but recoverable, 2 corrupt or usage/IO error.
#include <cstdio>
#include <filesystem>
#include <string>

#include "tools/cli.hpp"
#include "tools/verify.hpp"

int main(int argc, char** argv) {
  nctools::Cli cli(argc, argv);
  nctools::VerifyOptions opts;
  opts.repair = cli.Flag("--repair");
  const bool quiet = cli.Flag("-q");
  if (!cli.Unknown().empty() || cli.positionals().size() != 1) {
    std::fprintf(stderr, "usage: ncverify [--repair] [-q] file.nc\n");
    return nctools::kExitError;
  }
  const std::string& path_s = cli.positionals()[0];
  const char* path = path_s.c_str();

  pfs::FileSystem fs;
  if (!fs.AttachDisk(path, path).ok()) {
    std::fprintf(stderr, "ncverify: cannot open %s\n", path);
    return nctools::kExitError;
  }
  const std::string jpath = ncformat::JournalPath(path);
  std::error_code ec;
  if (std::filesystem::exists(jpath, ec) &&
      !fs.AttachDisk(jpath, jpath).ok()) {
    std::fprintf(stderr, "ncverify: cannot open %s\n", jpath.c_str());
    return nctools::kExitError;
  }

  auto r = nctools::VerifyFile(fs, path, opts);
  if (!r.ok()) {
    std::fprintf(stderr, "ncverify: %s\n", r.status().message().c_str());
    return nctools::kExitError;
  }
  const nctools::VerifyResult& v = r.value();
  if (!quiet) {
    const char* label = v.state == ncformat::FileState::kClean
                            ? (v.repaired ? "repaired" : "clean")
                            : v.state == ncformat::FileState::kTornRecoverable
                                  ? "torn (recoverable)"
                                  : "corrupt";
    std::printf("%s: %s — %s\n", path, label, v.detail.c_str());
    if (!v.has_journal) std::printf("  (no commit journal)\n");
    for (const auto& n : v.notes) std::printf("  note: %s\n", n.c_str());
    if (v.state == ncformat::FileState::kTornRecoverable && !opts.repair)
      std::printf("  run with --repair to restore the committed state\n");
  }
  switch (v.state) {
    case ncformat::FileState::kClean:
      return nctools::kExitOk;
    case ncformat::FileState::kTornRecoverable:
      return nctools::kExitCondition;
    case ncformat::FileState::kCorrupt:
    default:
      return nctools::kExitError;
  }
}
