// ncverify — fsck for classic netCDF files written through the commit
// journal (<file>.nccommit sidecar).
//
// Usage: ncverify [--repair] [--data] [-q] file.nc
//   --repair  roll a torn file back to its last committed state, in place;
//             with --data, also rebuild the checksum sidecar from the
//             current bytes (the new baseline)
//   --data    scrub the data region against the <file>.ncsum chunk-checksum
//             sidecar: every chunk is classified clean / corrupt / unsummed
//   -q        quiet: no per-file report, exit status only
//
// Exit status (the shared tool contract, src/tools/cli.hpp): 0 clean (or
// repaired), 1 torn-but-recoverable or unsummed-only scrub coverage, 2
// corrupt (crash state or failed checksums) or usage/IO error.
#include <cstdio>
#include <filesystem>
#include <string>

#include "tools/cli.hpp"
#include "tools/verify.hpp"

int main(int argc, char** argv) {
  nctools::Cli cli(argc, argv);
  nctools::VerifyOptions opts;
  opts.repair = cli.Flag("--repair");
  opts.data = cli.Flag("--data");
  const bool quiet = cli.Flag("-q");
  if (!cli.Unknown().empty() || cli.positionals().size() != 1) {
    std::fprintf(stderr, "usage: ncverify [--repair] [--data] [-q] file.nc\n");
    return nctools::kExitError;
  }
  const std::string& path_s = cli.positionals()[0];
  const char* path = path_s.c_str();

  pfs::FileSystem fs;
  if (!fs.AttachDisk(path, path).ok()) {
    std::fprintf(stderr, "ncverify: cannot open %s\n", path);
    return nctools::kExitError;
  }
  const std::string jpath = ncformat::JournalPath(path);
  std::error_code ec;
  if (std::filesystem::exists(jpath, ec) &&
      !fs.AttachDisk(jpath, jpath).ok()) {
    std::fprintf(stderr, "ncverify: cannot open %s\n", jpath.c_str());
    return nctools::kExitError;
  }
  if (opts.data) {
    const std::string spath = ncformat::SumsPath(path);
    if (std::filesystem::exists(spath, ec)) {
      if (!fs.AttachDisk(spath, spath).ok()) {
        std::fprintf(stderr, "ncverify: cannot open %s\n", spath.c_str());
        return nctools::kExitError;
      }
    } else if (opts.repair && !fs.CreateOnDisk(spath, spath).ok()) {
      std::fprintf(stderr, "ncverify: cannot create %s\n", spath.c_str());
      return nctools::kExitError;
    }
  }

  auto r = nctools::VerifyFile(fs, path, opts);
  if (!r.ok()) {
    std::fprintf(stderr, "ncverify: %s\n", r.status().message().c_str());
    return nctools::kExitError;
  }
  const nctools::VerifyResult& v = r.value();
  if (!quiet) {
    const char* label = v.state == ncformat::FileState::kClean
                            ? (v.repaired ? "repaired" : "clean")
                            : v.state == ncformat::FileState::kTornRecoverable
                                  ? "torn (recoverable)"
                                  : "corrupt";
    std::printf("%s: %s — %s\n", path, label, v.detail.c_str());
    if (!v.has_journal) std::printf("  (no commit journal)\n");
    for (const auto& n : v.notes) std::printf("  note: %s\n", n.c_str());
    if (v.state == ncformat::FileState::kTornRecoverable && !opts.repair)
      std::printf("  run with --repair to restore the committed state\n");
    if (v.scrub) {
      const auto& s = *v.scrub;
      std::printf("  data: %llu clean, %llu corrupt, %llu unsummed (%s)\n",
                  static_cast<unsigned long long>(s.clean),
                  static_cast<unsigned long long>(s.corrupt),
                  static_cast<unsigned long long>(s.unsummed),
                  s.trusted ? "sidecar trusted" : "sidecar untrusted");
      for (const std::uint64_t c : s.corrupt_chunks)
        std::printf("  corrupt chunk %llu\n",
                    static_cast<unsigned long long>(c));
      if (v.sums_rebuilt)
        std::printf("  checksum sidecar rebuilt from current bytes\n");
      else if (s.corrupt > 0)
        std::printf(
            "  restore the data, then run --data --repair to re-baseline\n");
    }
  }
  if (v.scrub && v.scrub->corrupt > 0 && !v.sums_rebuilt)
    return nctools::kExitError;
  switch (v.state) {
    case ncformat::FileState::kClean:
      if (v.scrub && !v.scrub->trusted && v.scrub->unsummed > 0 &&
          !v.sums_rebuilt)
        return nctools::kExitCondition;
      return nctools::kExitOk;
    case ncformat::FileState::kTornRecoverable:
      return nctools::kExitCondition;
    case ncformat::FileState::kCorrupt:
    default:
      return nctools::kExitError;
  }
}
