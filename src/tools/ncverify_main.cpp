// ncverify — fsck for classic netCDF files written through the commit
// journal (<file>.nccommit sidecar).
//
// Usage: ncverify [--repair] [-q] file.nc
//   --repair  roll a torn file back to its last committed state, in place
//   -q        quiet: no per-file report, exit status only
//
// Exit status: 0 clean (or repaired), 1 torn but recoverable, 2 corrupt or
// usage/IO error.
#include <cstdio>
#include <cstring>
#include <filesystem>
#include <string>

#include "tools/verify.hpp"

int main(int argc, char** argv) {
  nctools::VerifyOptions opts;
  bool quiet = false;
  const char* path = nullptr;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--repair") == 0) {
      opts.repair = true;
    } else if (std::strcmp(argv[i], "-q") == 0) {
      quiet = true;
    } else if (path == nullptr) {
      path = argv[i];
    } else {
      path = nullptr;
      break;
    }
  }
  if (path == nullptr) {
    std::fprintf(stderr, "usage: ncverify [--repair] [-q] file.nc\n");
    return 2;
  }

  pfs::FileSystem fs;
  if (!fs.AttachDisk(path, path).ok()) {
    std::fprintf(stderr, "ncverify: cannot open %s\n", path);
    return 2;
  }
  const std::string jpath = ncformat::JournalPath(path);
  std::error_code ec;
  if (std::filesystem::exists(jpath, ec) &&
      !fs.AttachDisk(jpath, jpath).ok()) {
    std::fprintf(stderr, "ncverify: cannot open %s\n", jpath.c_str());
    return 2;
  }

  auto r = nctools::VerifyFile(fs, path, opts);
  if (!r.ok()) {
    std::fprintf(stderr, "ncverify: %s\n", r.status().message().c_str());
    return 2;
  }
  const nctools::VerifyResult& v = r.value();
  if (!quiet) {
    const char* label = v.state == ncformat::FileState::kClean
                            ? (v.repaired ? "repaired" : "clean")
                            : v.state == ncformat::FileState::kTornRecoverable
                                  ? "torn (recoverable)"
                                  : "corrupt";
    std::printf("%s: %s — %s\n", path, label, v.detail.c_str());
    if (!v.has_journal) std::printf("  (no commit journal)\n");
    for (const auto& n : v.notes) std::printf("  note: %s\n", n.c_str());
    if (v.state == ncformat::FileState::kTornRecoverable && !opts.repair)
      std::printf("  run with --repair to restore the committed state\n");
  }
  switch (v.state) {
    case ncformat::FileState::kClean:
      return 0;
    case ncformat::FileState::kTornRecoverable:
      return 1;
    case ncformat::FileState::kCorrupt:
    default:
      return 2;
  }
}
