// The one bounded retry-with-backoff loop shared by every layer that drives
// the fault-injected pfs Try* path (mpiio transfers, the serial netCDF
// BufferedFile, the commit-journal adapter).
//
// Policy (identical everywhere, per DESIGN.md §6):
//   * short transfers resume from the reported count without consuming
//     retry budget — progress was made;
//   * a transient error (pnc::Err::kIoTransient) waits an exponentially
//     growing backoff charged to the caller's virtual clock, up to
//     `max_attempts` times; an exhausted budget converts the error to a
//     permanent pnc::Err::kIo;
//   * permanent errors are returned immediately;
//   * a zero-byte "success" is reported as kIo instead of looping forever.
//
// The budget is configurable per process via PNC_RETRY_MAX and
// PNC_RETRY_BACKOFF_NS (parsed through util/env.hpp, so malformed values
// warn once and fall back), and the initial backoff carries a deterministic
// per-rank jitter so many ranks hitting the same transient fault (e.g. a
// server outage window) do not retry in lockstep. Rank 0 keeps a jitter
// factor of exactly 1.0, so serial paths and root-performed commits are
// bit-identical to the historical loops.
#pragma once

#include <cstdint>
#include <utility>

#include "util/env.hpp"
#include "util/rng.hpp"
#include "util/status.hpp"

namespace pnc::util {

struct RetryPolicy {
  int max_attempts = 4;
  double backoff_ns = 1e6;  ///< initial backoff; doubles per retry
};

/// Resolve the effective retry budget for one rank: caller defaults (e.g.
/// mpiio hints), overridden by PNC_RETRY_MAX / PNC_RETRY_BACKOFF_NS when
/// set, then the deterministic per-rank jitter factor in [1.0, 1.25)
/// applied to the backoff (identity for rank 0).
inline RetryPolicy ResolveRetryPolicy(int rank, int def_max = 4,
                                      double def_backoff_ns = 1e6) {
  RetryPolicy pol;
  pol.max_attempts =
      static_cast<int>(EnvInt("PNC_RETRY_MAX", def_max));
  if (pol.max_attempts < 0) pol.max_attempts = 0;
  pol.backoff_ns = EnvDouble("PNC_RETRY_BACKOFF_NS", def_backoff_ns);
  if (pol.backoff_ns < 0) pol.backoff_ns = 0;
  if (rank > 0) {
    pnc::SplitMix64 rng(0x9E3779B97F4A7C15ULL ^
                        static_cast<std::uint64_t>(rank));
    pol.backoff_ns *= 1.0 + 0.25 * rng.NextDouble();
  }
  return pol;
}

/// Drive `attempt(done)` (which must return a pfs::IoResult-shaped value:
/// .status, .transferred, .done_ns) until `len` bytes have moved or the
/// budget is spent. `clock` is advanced to each attempt's completion and by
/// each backoff wait; `on_retry(attempt_no, backoff_ns)` fires before each
/// backoff so callers can count/trace/record the retry.
template <typename Clock, typename AttemptFn, typename OnRetryFn>
pnc::Status RetryWithBackoff(const RetryPolicy& pol, Clock& clock,
                             std::uint64_t len, AttemptFn&& attempt,
                             OnRetryFn&& on_retry) {
  std::uint64_t done = 0;
  int attempts = 0;
  double backoff = pol.backoff_ns;
  while (done < len) {
    const auto r = attempt(done);
    clock.AdvanceTo(r.done_ns);
    if (r.status.ok()) {
      if (r.transferred == 0)
        return pnc::Status(pnc::Err::kIo, "no progress");
      done += r.transferred;
      continue;
    }
    if (r.status.code() != pnc::Err::kIoTransient) return r.status;
    if (attempts >= pol.max_attempts)
      return pnc::Status(pnc::Err::kIo, "transient I/O retries exhausted");
    ++attempts;
    on_retry(attempts, backoff);
    clock.Advance(backoff);
    backoff *= 2;
  }
  return pnc::Status::Ok();
}

/// The same policy for a sync barrier (a zero-length faultable op with no
/// notion of partial progress).
template <typename Clock, typename AttemptFn, typename OnRetryFn>
pnc::Status RetrySyncWithBackoff(const RetryPolicy& pol, Clock& clock,
                                 AttemptFn&& attempt, OnRetryFn&& on_retry) {
  int attempts = 0;
  double backoff = pol.backoff_ns;
  for (;;) {
    const auto r = attempt();
    clock.AdvanceTo(r.done_ns);
    if (r.status.ok()) return pnc::Status::Ok();
    if (r.status.code() != pnc::Err::kIoTransient) return r.status;
    if (attempts >= pol.max_attempts)
      return pnc::Status(pnc::Err::kIo, "transient I/O retries exhausted");
    ++attempts;
    on_retry(attempts, backoff);
    clock.Advance(backoff);
    backoff *= 2;
  }
}

}  // namespace pnc::util
