// XDR-style big-endian encoding primitives.
//
// The netCDF classic format stores all header fields and array data in a
// well-defined big-endian layout "similar to XDR but extended to support
// efficient storage of arrays of nonbyte data" (paper §3.1). These helpers
// convert between host representation and that on-disk form.
#pragma once

#include <bit>
#include <cstdint>
#include <cstring>
#include <span>
#include <string>
#include <vector>

#include "util/status.hpp"

namespace pnc::xdr {

static_assert(std::endian::native == std::endian::little ||
                  std::endian::native == std::endian::big,
              "mixed-endian hosts are not supported");

/// True when the host byte order already matches the on-disk (big-endian)
/// order, in which case array conversion degenerates to memcpy.
constexpr bool kHostIsBig = std::endian::native == std::endian::big;

template <typename T>
constexpr T ByteSwap(T v) {
  static_assert(std::is_trivially_copyable_v<T>);
  if constexpr (sizeof(T) == 1) {
    return v;
  } else {
    auto bytes = std::bit_cast<std::array<std::byte, sizeof(T)>>(v);
    for (std::size_t i = 0; i < sizeof(T) / 2; ++i)
      std::swap(bytes[i], bytes[sizeof(T) - 1 - i]);
    return std::bit_cast<T>(bytes);
  }
}

template <typename T>
constexpr T ToBig(T v) {
  return kHostIsBig ? v : ByteSwap(v);
}
template <typename T>
constexpr T FromBig(T v) {
  return kHostIsBig ? v : ByteSwap(v);
}

/// Append-only big-endian encoder used for header serialization.
class Encoder {
 public:
  explicit Encoder(std::vector<std::byte>& out) : out_(out) {}

  void PutBytes(std::span<const std::byte> b) {
    out_.insert(out_.end(), b.begin(), b.end());
  }
  void PutU8(std::uint8_t v) { out_.push_back(std::byte{v}); }

  template <typename T>
  void PutScalar(T v) {
    T big = ToBig(v);
    auto* p = reinterpret_cast<const std::byte*>(&big);
    out_.insert(out_.end(), p, p + sizeof(T));
  }

  void PutI16(std::int16_t v) { PutScalar(v); }
  void PutI32(std::int32_t v) { PutScalar(v); }
  void PutI64(std::int64_t v) { PutScalar(v); }
  void PutU32(std::uint32_t v) { PutScalar(v); }
  void PutU64(std::uint64_t v) { PutScalar(v); }
  void PutF32(float v) { PutScalar(v); }
  void PutF64(double v) { PutScalar(v); }

  /// netCDF name encoding: 4-byte length, bytes, zero-padding to a 4-byte
  /// boundary.
  void PutName(std::string_view s);

  /// Zero padding up to a 4-byte boundary relative to buffer start.
  void PadTo4();

  [[nodiscard]] std::size_t size() const { return out_.size(); }

 private:
  std::vector<std::byte>& out_;
};

/// Cursor-based big-endian decoder with bounds checking.
class Decoder {
 public:
  explicit Decoder(std::span<const std::byte> in) : in_(in) {}

  [[nodiscard]] std::size_t pos() const { return pos_; }
  [[nodiscard]] std::size_t remaining() const { return in_.size() - pos_; }

  Status GetBytes(std::span<std::byte> out);

  template <typename T>
  Status GetScalar(T& v) {
    if (remaining() < sizeof(T)) return Status(Err::kTrunc, "decode scalar");
    T big;
    std::memcpy(&big, in_.data() + pos_, sizeof(T));
    pos_ += sizeof(T);
    v = FromBig(big);
    return Status::Ok();
  }

  Status GetI32(std::int32_t& v) { return GetScalar(v); }
  Status GetI64(std::int64_t& v) { return GetScalar(v); }
  Status GetU32(std::uint32_t& v) { return GetScalar(v); }
  Status GetU64(std::uint64_t& v) { return GetScalar(v); }
  Status GetF32(float& v) { return GetScalar(v); }
  Status GetF64(double& v) { return GetScalar(v); }

  Status GetName(std::string& s);
  Status SkipPadTo4();

 private:
  std::span<const std::byte> in_;
  std::size_t pos_ = 0;
};

/// Round x up to the nearest multiple of 4 (netCDF header/data padding rule).
constexpr std::uint64_t RoundUp4(std::uint64_t x) { return (x + 3) & ~3ULL; }

/// Convert an array of host-order scalars to big-endian bytes (and back).
/// These are the hot paths used when staging variable data for file I/O.
template <typename T>
void EncodeArray(std::span<const T> in, std::byte* out) {
  if constexpr (kHostIsBig || sizeof(T) == 1) {
    std::memcpy(out, in.data(), in.size_bytes());
  } else {
    for (std::size_t i = 0; i < in.size(); ++i) {
      T big = ToBig(in[i]);
      std::memcpy(out + i * sizeof(T), &big, sizeof(T));
    }
  }
}

template <typename T>
void DecodeArray(const std::byte* in, std::span<T> out) {
  if constexpr (kHostIsBig || sizeof(T) == 1) {
    std::memcpy(out.data(), in, out.size_bytes());
  } else {
    for (std::size_t i = 0; i < out.size(); ++i) {
      T big;
      std::memcpy(&big, in + i * sizeof(T), sizeof(T));
      out[i] = FromBig(big);
    }
  }
}

}  // namespace pnc::xdr
