#include "util/env.hpp"

#include <cctype>
#include <cstdio>
#include <cstdlib>
#include <mutex>
#include <set>
#include <string>

namespace pnc::util {

namespace {

std::mutex g_warned_mu;

/// Warn once per variable name per process. Malformed values are a config
/// mistake, not an I/O failure, so diagnostics must never throw or abort.
void WarnOnce(const char* name, const char* value) {
  static std::set<std::string>* warned = new std::set<std::string>();
  std::lock_guard<std::mutex> lk(g_warned_mu);
  if (!warned->insert(name).second) return;
  std::fprintf(stderr,
               "pnc: ignoring malformed %s=\"%s\" (not a number); "
               "using the built-in default\n",
               name, value);
}

/// The value parses iff strtod/strtoll consumed everything but trailing
/// whitespace. An empty value is treated as unset, not malformed.
bool FullyParsed(const char* value, const char* end) {
  if (end == value) return false;
  while (*end != '\0') {
    if (!std::isspace(static_cast<unsigned char>(*end))) return false;
    ++end;
  }
  return true;
}

}  // namespace

bool EnvSet(const char* name) {
  const char* v = std::getenv(name);
  return v != nullptr && *v != '\0';
}

double EnvDouble(const char* name, double def) {
  const char* v = std::getenv(name);
  if (v == nullptr || *v == '\0') return def;
  char* end = nullptr;
  const double parsed = std::strtod(v, &end);
  if (!FullyParsed(v, end)) {
    WarnOnce(name, v);
    return def;
  }
  return parsed;
}

std::int64_t EnvInt(const char* name, std::int64_t def) {
  const char* v = std::getenv(name);
  if (v == nullptr || *v == '\0') return def;
  char* end = nullptr;
  const long long parsed = std::strtoll(v, &end, 10);
  if (!FullyParsed(v, end)) {
    WarnOnce(name, v);
    return def;
  }
  return static_cast<std::int64_t>(parsed);
}

}  // namespace pnc::util
