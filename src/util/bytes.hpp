// Small byte/array helpers shared across modules.
#pragma once

#include <cstddef>
#include <cstdint>
#include <numeric>
#include <span>
#include <vector>

namespace pnc {

using ByteSpan = std::span<std::byte>;
using ConstByteSpan = std::span<const std::byte>;

/// A contiguous run of bytes in a file: [offset, offset+len).
struct Extent {
  std::uint64_t offset = 0;
  std::uint64_t len = 0;

  [[nodiscard]] std::uint64_t end() const { return offset + len; }
  friend bool operator==(const Extent&, const Extent&) = default;
};

/// Product of a shape vector (number of elements in an N-D array).
inline std::uint64_t ShapeProduct(std::span<const std::uint64_t> shape) {
  return std::accumulate(shape.begin(), shape.end(), std::uint64_t{1},
                         [](std::uint64_t a, std::uint64_t b) { return a * b; });
}

/// Coalesce adjacent extents in an offset-sorted run list in place.
inline void CoalesceExtents(std::vector<Extent>& runs) {
  if (runs.empty()) return;
  std::size_t w = 0;
  for (std::size_t i = 1; i < runs.size(); ++i) {
    if (runs[i].offset == runs[w].end()) {
      runs[w].len += runs[i].len;
    } else {
      runs[++w] = runs[i];
    }
  }
  runs.resize(w + 1);
}

constexpr std::uint64_t operator""_KiB(unsigned long long v) { return v << 10; }
constexpr std::uint64_t operator""_MiB(unsigned long long v) { return v << 20; }
constexpr std::uint64_t operator""_GiB(unsigned long long v) { return v << 30; }

}  // namespace pnc
