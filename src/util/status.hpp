// Error handling for the PnetCDF reproduction.
//
// The netCDF C interface reports errors as negative integer codes; we keep
// that convention (the codes below mirror the classic netcdf.h values where
// applicable) but wrap them in a small Status/Expected layer so C++ callers
// never have to thread raw ints through their code.
#pragma once

#include <string>
#include <string_view>
#include <utility>
#include <variant>

namespace pnc {

/// Error codes. Values match the classic netCDF C library where a
/// counterpart exists; simulator-specific codes live below -1000.
enum class Err : int {
  kNoErr = 0,
  kBadId = -33,          ///< Not a valid dataset id
  kTooManyFiles = -34,   ///< Too many open files
  kExists = -35,         ///< File exists and NC_NOCLOBBER given
  kInvalidArg = -36,     ///< Invalid argument
  kPermission = -37,     ///< Write to read-only file
  kNotInDefine = -38,    ///< Operation not allowed in data mode
  kInDefine = -39,       ///< Operation not allowed in define mode
  kInvalidCoords = -40,  ///< Index exceeds dimension bound
  kMaxDims = -41,        ///< Too many dimensions
  kNameInUse = -42,      ///< Name already in use
  kNotAtt = -43,         ///< Attribute not found
  kMaxAtts = -44,        ///< Too many attributes
  kBadType = -45,        ///< Not a valid data type
  kBadDim = -46,         ///< Invalid dimension id or name
  kUnlimPos = -47,       ///< Unlimited dim must be most significant
  kMaxVars = -48,        ///< Too many variables
  kNotVar = -49,         ///< Variable not found
  kGlobal = -50,         ///< Action prohibited on global attributes
  kNotNc = -51,          ///< Not a netCDF file
  kStrictNc3 = -52,      ///< Operation not allowed in classic model
  kMaxName = -53,        ///< Name too long
  kUnlimit = -54,        ///< Unlimited dimension used twice
  kEdge = -57,           ///< Start+count exceeds dimension bound
  kStride = -58,         ///< Illegal stride
  kBadName = -59,        ///< Name contains illegal characters
  kRange = -60,          ///< Value out of range for external type
  kNoMem = -61,          ///< Out of memory
  kVarSize = -62,        ///< Variable size exceeds format limit
  kDimSize = -63,        ///< Dimension size exceeds format limit
  kTrunc = -64,          ///< File likely truncated

  // Parallel (PnetCDF) specific, mirroring pnetcdf.h conventions.
  kMultiDefine = -250,     ///< Inconsistent define calls across ranks
  kNotIndep = -251,        ///< Not in independent data mode
  kInIndep = -252,         ///< Collective call while in independent mode
  kFileSync = -253,        ///< File sync failure
  kNullBuf = -254,         ///< Null data buffer
  kTypeMismatch = -255,    ///< Memory datatype size mismatch

  // Substrate-specific (no classic counterpart).
  kIo = -1001,           ///< Underlying storage error (permanent)
  kMpi = -1002,          ///< simmpi failure
  kInternal = -1003,     ///< Invariant violation inside the library
  kIoTransient = -1004,  ///< Storage error that a retry may clear; never
                         ///< escapes the MPI-IO retry layer (it is converted
                         ///< to kIo once the retry budget is exhausted)
  kRankFailed = -1005,   ///< A participating rank crashed (simmpi rank-fault
                         ///< injection). Collectives detect the death, agree
                         ///< on the surviving set, and return this on every
                         ///< survivor instead of hanging; the file is left in
                         ///< a journal-consistent (ncverify-legal) state.
  kDataCorrupt = -1006,  ///< A read recomputed a committed chunk checksum
                         ///< (format/sums.hpp) and it kept mismatching after
                         ///< heal retries: the bytes on storage no longer
                         ///< match what was written. Never returned for a
                         ///< transient flip (those heal); sticky at the
                         ///< dataset layer — Close re-reports it.
};

/// Human-readable message for an error code (mirrors nc_strerror).
std::string_view StrError(Err e);

/// A success-or-error result with optional context message.
class Status {
 public:
  Status() : err_(Err::kNoErr) {}
  explicit Status(Err e, std::string context = {})
      : err_(e), context_(std::move(context)) {}

  static Status Ok() { return Status(); }

  [[nodiscard]] bool ok() const { return err_ == Err::kNoErr; }
  [[nodiscard]] Err code() const { return err_; }
  [[nodiscard]] int raw() const { return static_cast<int>(err_); }
  [[nodiscard]] std::string message() const;

  explicit operator bool() const { return ok(); }

 private:
  Err err_;
  std::string context_;
};

/// Expected-style value-or-Status. Minimal on purpose; the library predates
/// std::expected availability in this toolchain.
template <typename T>
class Result {
 public:
  Result(T value) : v_(std::move(value)) {}  // NOLINT implicit by design
  Result(Status s) : v_(std::move(s)) {}     // NOLINT implicit by design
  Result(Err e) : v_(Status(e)) {}           // NOLINT implicit by design

  [[nodiscard]] bool ok() const { return std::holds_alternative<T>(v_); }
  [[nodiscard]] const T& value() const& { return std::get<T>(v_); }
  [[nodiscard]] T& value() & { return std::get<T>(v_); }
  [[nodiscard]] T&& value() && { return std::get<T>(std::move(v_)); }
  [[nodiscard]] Status status() const {
    return ok() ? Status::Ok() : std::get<Status>(v_);
  }

 private:
  std::variant<T, Status> v_;
};

}  // namespace pnc

/// Propagate a non-ok Status from the current function.
#define PNC_RETURN_IF_ERROR(expr)                \
  do {                                           \
    ::pnc::Status _pnc_st = (expr);              \
    if (!_pnc_st.ok()) return _pnc_st;           \
  } while (0)

#define PNC_CONCAT_INNER(a, b) a##b
#define PNC_CONCAT(a, b) PNC_CONCAT_INNER(a, b)

/// Assign from a Result<T> or propagate its Status.
#define PNC_ASSIGN_OR_RETURN(lhs, expr)                    \
  auto PNC_CONCAT(_pnc_res_, __LINE__) = (expr);           \
  if (!PNC_CONCAT(_pnc_res_, __LINE__).ok())               \
    return PNC_CONCAT(_pnc_res_, __LINE__).status();       \
  lhs = std::move(PNC_CONCAT(_pnc_res_, __LINE__)).value()
