// Checked parsing of PNC_* environment variables.
//
// std::atof-style parsing silently accepts garbage ("3OO" parses as 3,
// "abc" as 0 — which can *disable a watchdog*). Every numeric PNC_* variable
// goes through these helpers instead: the whole value must parse (trailing
// junk is malformed), a malformed value falls back to the supplied default,
// and the first malformed read of each variable warns once on stderr so a
// typo'd environment is visible without spamming every rank thread.
#pragma once

#include <cstdint>

namespace pnc::util {

/// True when `name` is set to a non-empty value.
bool EnvSet(const char* name);

/// Parse `name` as a double. Unset/empty -> `def`. Malformed (the value does
/// not parse in full) -> `def`, with a once-per-variable stderr warning.
double EnvDouble(const char* name, double def);

/// Same contract for integers (base 10).
std::int64_t EnvInt(const char* name, std::int64_t def);

}  // namespace pnc::util
