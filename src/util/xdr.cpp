#include "util/xdr.hpp"

namespace pnc::xdr {

void Encoder::PutName(std::string_view s) {
  PutU32(static_cast<std::uint32_t>(s.size()));
  auto* p = reinterpret_cast<const std::byte*>(s.data());
  out_.insert(out_.end(), p, p + s.size());
  PadTo4();
}

void Encoder::PadTo4() {
  while (out_.size() % 4 != 0) out_.push_back(std::byte{0});
}

Status Decoder::GetBytes(std::span<std::byte> out) {
  if (remaining() < out.size()) return Status(Err::kTrunc, "decode bytes");
  std::memcpy(out.data(), in_.data() + pos_, out.size());
  pos_ += out.size();
  return Status::Ok();
}

Status Decoder::GetName(std::string& s) {
  std::uint32_t len = 0;
  PNC_RETURN_IF_ERROR(GetU32(len));
  if (remaining() < len) return Status(Err::kTrunc, "decode name");
  s.assign(reinterpret_cast<const char*>(in_.data() + pos_), len);
  pos_ += len;
  return SkipPadTo4();
}

Status Decoder::SkipPadTo4() {
  while (pos_ % 4 != 0) {
    if (remaining() == 0) return Status(Err::kTrunc, "decode padding");
    ++pos_;
  }
  return Status::Ok();
}

}  // namespace pnc::xdr
