// CRC-32 (ISO-HDLC / zlib polynomial, reflected 0xEDB88320).
//
// Used by the crash-consistency commit protocol to checksum the shadow
// header and the commit record, so a torn write is detected rather than
// trusted. Table-driven, computed at compile time; no dependencies.
#pragma once

#include <array>
#include <cstdint>

#include "util/bytes.hpp"

namespace pnc {

namespace detail {
constexpr std::array<std::uint32_t, 256> MakeCrc32Table() {
  std::array<std::uint32_t, 256> t{};
  for (std::uint32_t i = 0; i < 256; ++i) {
    std::uint32_t c = i;
    for (int k = 0; k < 8; ++k)
      c = (c & 1u) ? 0xEDB88320u ^ (c >> 1) : c >> 1;
    t[i] = c;
  }
  return t;
}
inline constexpr std::array<std::uint32_t, 256> kCrc32Table = MakeCrc32Table();
}  // namespace detail

/// One-shot or incremental CRC-32. Start with crc = 0; feed chunks by
/// passing the previous return value back in.
inline std::uint32_t Crc32(ConstByteSpan data, std::uint32_t crc = 0) {
  crc = ~crc;
  for (const std::byte b : data)
    crc = detail::kCrc32Table[(crc ^ static_cast<std::uint32_t>(b)) & 0xFFu] ^
          (crc >> 8);
  return ~crc;
}

}  // namespace pnc
