#include "util/status.hpp"

namespace pnc {

std::string_view StrError(Err e) {
  switch (e) {
    case Err::kNoErr: return "No error";
    case Err::kBadId: return "Not a valid ID";
    case Err::kTooManyFiles: return "Too many netCDF files open";
    case Err::kExists: return "File exists && NC_NOCLOBBER";
    case Err::kInvalidArg: return "Invalid argument";
    case Err::kPermission: return "Write to read only";
    case Err::kNotInDefine: return "Operation not allowed in data mode";
    case Err::kInDefine: return "Operation not allowed in define mode";
    case Err::kInvalidCoords: return "Index exceeds dimension bound";
    case Err::kMaxDims: return "NC_MAX_DIMS exceeded";
    case Err::kNameInUse: return "String match to name in use";
    case Err::kNotAtt: return "Attribute not found";
    case Err::kMaxAtts: return "NC_MAX_ATTRS exceeded";
    case Err::kBadType: return "Not a netCDF data type";
    case Err::kBadDim: return "Invalid dimension id or name";
    case Err::kUnlimPos: return "NC_UNLIMITED in the wrong index";
    case Err::kMaxVars: return "NC_MAX_VARS exceeded";
    case Err::kNotVar: return "Variable not found";
    case Err::kGlobal: return "Action prohibited on NC_GLOBAL varid";
    case Err::kNotNc: return "Not a netCDF file";
    case Err::kStrictNc3: return "In Fortran, string too short";
    case Err::kMaxName: return "NC_MAX_NAME exceeded";
    case Err::kUnlimit: return "NC_UNLIMITED size already in use";
    case Err::kEdge: return "Start+count exceeds dimension bound";
    case Err::kStride: return "Illegal stride";
    case Err::kBadName: return "Attribute or variable name contains illegal characters";
    case Err::kRange: return "Numeric conversion not representable";
    case Err::kNoMem: return "Memory allocation (malloc) failure";
    case Err::kVarSize: return "One or more variable sizes violate format constraints";
    case Err::kDimSize: return "Invalid dimension size";
    case Err::kTrunc: return "File likely truncated or possibly corrupted";
    case Err::kMultiDefine: return "Inconsistent metadata arguments across processes";
    case Err::kNotIndep: return "Operation not allowed: not in independent data mode";
    case Err::kInIndep: return "Operation not allowed in independent data mode";
    case Err::kFileSync: return "File sync failure";
    case Err::kNullBuf: return "Null data buffer";
    case Err::kTypeMismatch: return "Memory datatype does not match request size";
    case Err::kIo: return "I/O error on underlying storage";
    case Err::kIoTransient: return "Transient I/O error (retryable)";
    case Err::kMpi: return "simmpi runtime failure";
    case Err::kInternal: return "Internal library invariant violated";
    case Err::kRankFailed: return "A participating rank failed";
    case Err::kDataCorrupt:
      return "Data checksum mismatch (corrupt chunk on storage)";
  }
  return "Unknown error";
}

std::string Status::message() const {
  std::string m(StrError(err_));
  if (!context_.empty()) {
    m += ": ";
    m += context_;
  }
  return m;
}

}  // namespace pnc
