// Deterministic pseudo-random generation for tests and synthetic workloads.
//
// Benchmarks and property tests must be reproducible run-to-run, so all
// synthetic data is derived from explicit seeds via this splitmix64-based
// generator rather than std::random_device.
#pragma once

#include <cstdint>

namespace pnc {

class SplitMix64 {
 public:
  explicit SplitMix64(std::uint64_t seed) : state_(seed) {}

  std::uint64_t Next() {
    std::uint64_t z = (state_ += 0x9E3779B97F4A7C15ULL);
    z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ULL;
    z = (z ^ (z >> 27)) * 0x94D049BB133111EBULL;
    return z ^ (z >> 31);
  }

  /// Uniform in [0, bound).
  std::uint64_t Below(std::uint64_t bound) { return bound ? Next() % bound : 0; }

  /// Uniform double in [0, 1).
  double NextDouble() {
    return static_cast<double>(Next() >> 11) * 0x1.0p-53;
  }

 private:
  std::uint64_t state_;
};

}  // namespace pnc
