// Shared JSON string escaping.
//
// Three serializers used to hand-roll this independently (benchlib's
// pnc-bench-v1 records, the iostat Chrome trace exporter, and the iostat
// report/event dumps). They now share this one escaper so every producer
// agrees on the same treatment of quotes, backslashes, and control bytes.
//
// Scope note: this escapes for emission *inside* a JSON string literal (no
// surrounding quotes are added), it never re-encodes valid printable bytes,
// and it makes no attempt at UTF-8 validation — bytes >= 0x20 pass through
// untouched, which matches how the rest of the codebase treats names as
// opaque byte strings.
#pragma once

#include <cstdio>
#include <string>
#include <string_view>

namespace pnc::json {

/// Append `s`, JSON-escaped, to `out` (no surrounding quotes).
inline void AppendEscaped(std::string& out, std::string_view s) {
  for (const char ch : s) {
    const unsigned char c = static_cast<unsigned char>(ch);
    switch (c) {
      case '"':
        out += "\\\"";
        break;
      case '\\':
        out += "\\\\";
        break;
      case '\n':
        out += "\\n";
        break;
      case '\t':
        out += "\\t";
        break;
      case '\r':
        out += "\\r";
        break;
      case '\b':
        out += "\\b";
        break;
      case '\f':
        out += "\\f";
        break;
      default:
        if (c < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          out += buf;
        } else {
          out += ch;
        }
        break;
    }
  }
}

/// Return `s` JSON-escaped (no surrounding quotes).
inline std::string Escape(std::string_view s) {
  std::string out;
  out.reserve(s.size());
  AppendEscaped(out, s);
  return out;
}

}  // namespace pnc::json
