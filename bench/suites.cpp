// Named suites for ncbench. Entry args are exactly what the standalone
// drivers accept; the suite layer only adds orchestration.
//
// Determinism note (why `smoke` looks the way it does): the pfs cost model
// serves concurrent requests FCFS in *real-time* arrival order, so any
// config where more than one rank thread touches the file system
// concurrently can shift virtual completion times by scheduling noise (see
// EXPERIMENTS.md "Notes on variance"). The smoke suite therefore pins every
// entry to a single-writer shape — one process, or `--hints=cb_nodes=1` so
// exactly one two-phase aggregator performs file I/O — which makes every
// recorded metric (bandwidths included) an exact, byte-stable function of
// the virtual-time model. That is what lets the committed baseline be
// compared at zero tolerance.
#include "bench/registry.hpp"

namespace bench {

namespace {

const char* kDet = "--hints=cb_nodes=1";

std::vector<Suite> BuildSuites() {
  std::vector<Suite> s;
  s.push_back(
      {"smoke",
       "fast deterministic regression suite (single-writer configs; backs "
       "bench/baselines/smoke.json)",
       {
           {"fig6_scalability",
            {"--size=64mb", "--op=write", "--procs=1,4", kDet}},
           {"fig7_flashio",
            {"--file=checkpoint", "--block=8", "--procs=4", "--lib=pnetcdf",
             kDet}},
           {"ablation_collective", {"--mode=collective", kDet}},
           {"ablation_twophase", {"--cb=enable", kDet}},
           {"ablation_sieving", {"--op=read"}},
           {"ablation_header", {"--lib=pnetcdf"}},
           {"ablation_servers", {kDet}},
           {"ablation_nonblocking", {kDet}},
       }});
  s.push_back(
      {"chaos",
       "rank-fault schedules x pfs faults: failure-semantics invariants "
       "(backs bench/baselines/chaos.json)",
       {
           {"chaos_matrix", {"--procs=4", kDet}},
       }});
  s.push_back(
      {"tenants",
       "multi-tenant QoS fairness invariants: steady readback vs checkpoint "
       "storm under fcfs/wfq/edf/admission (backs "
       "bench/baselines/tenants.json)",
       {
           {"tenants", {"--procs=4", kDet}},
       }});
  s.push_back(
      {"advise",
       "I/O tuning advisor closed loop: mistuned workload -> recommendations "
       "-> advised rerun (backs bench/baselines/advise.json)",
       {
           {"advise", {"--procs=4", kDet}},
       }});
  s.push_back({"fig6",
               "full Figure 6 serial-vs-parallel scalability sweep",
               {{"fig6_scalability", {}}}});
  s.push_back({"fig7",
               "full Figure 7 FLASH I/O sweep, PnetCDF vs hdf5lite",
               {{"fig7_flashio", {}}}});
  s.push_back({"ablations",
               "all design-choice ablations at their default sweeps",
               {
                   {"ablation_collective", {}},
                   {"ablation_twophase", {}},
                   {"ablation_sieving", {}},
                   {"ablation_header", {}},
                   {"ablation_servers", {}},
                   {"ablation_nonblocking", {}},
               }});
  s.push_back({"full",
               "everything: figures, ablations, read-back, microbenches",
               {
                   {"fig6_scalability", {}},
                   {"fig7_flashio", {}},
                   {"ablation_collective", {}},
                   {"ablation_twophase", {}},
                   {"ablation_sieving", {}},
                   {"ablation_header", {}},
                   {"ablation_servers", {}},
                   {"ablation_nonblocking", {}},
                   {"future_readback", {}},
                   {"micro_datatype", {}},
                   {"micro_header", {}},
               }});
  return s;
}

}  // namespace

const std::vector<Suite>& Suites() {
  static const std::vector<Suite> kSuites = BuildSuites();
  return kSuites;
}

const Suite* FindSuite(const std::string& name) {
  for (const auto& s : Suites())
    if (name == s.name) return &s;
  return nullptr;
}

}  // namespace bench
