// Figure 6 reproduction: serial vs parallel netCDF scalability.
//
// The LBL test code (§5.1): read/write a three-dimensional array field
// tt(Z,Y,X) from/into a single netCDF file, partitioned along Z, Y, X, ZY,
// ZX, YX and ZYX (Figure 5), on an SDSC Blue Horizon-like platform with 12
// I/O servers. The first column of each chart is the serial netCDF library
// accessing the whole array through one process; the remaining columns are
// PnetCDF with collective I/O.
//
// Usage: bench_fig6_scalability [--size=64mb|1gb|all] [--op=read|write|all]
//                               [--procs=1,2,4,8,16] [--quick]
//                               [--hints=k=v,...] [--json=BENCH_fig6.json]
#include <cstdio>
#include <numeric>

#include "bench/bench_common.hpp"
#include "bench/platforms.hpp"
#include "bench/registry.hpp"
#include "netcdf/dataset.hpp"
#include "pnetcdf/dataset.hpp"
#include "simmpi/runtime.hpp"

namespace {

using bench::Args;
using bench::Decompose;
using bench::kPartitions;
using bench::MBps;

struct Case {
  const char* label;
  std::uint64_t z, y, x;
  std::vector<int> procs;
};

/// Serial netCDF baseline: one process reads/writes the whole array through
/// the serial library (in Z-slabs, as the original Fortran test code does).
double RunSerial(const Case& cse, bool is_write) {
  pfs::Config pcfg = bench::SdscBlueHorizon();
  pcfg.discard_data = true;
  pfs::FileSystem fs(pcfg);
  const std::uint64_t total_bytes = cse.z * cse.y * cse.x * 8;

  auto ds = netcdf::Dataset::Create(fs, "tt.nc").value();
  const int zd = ds.DefDim("level", cse.z).value();
  const int yd = ds.DefDim("latitude", cse.y).value();
  const int xd = ds.DefDim("longitude", cse.x).value();
  const int v = ds.DefVar("tt", ncformat::NcType::kDouble, {zd, yd, xd}).value();
  if (!ds.EndDef().ok()) return 0.0;

  const std::uint64_t slabs = std::min<std::uint64_t>(cse.z, 8);
  const std::uint64_t zper = cse.z / slabs;
  std::vector<double> buf(zper * cse.y * cse.x, 1.5);

  if (is_write) {  // populate before timing reads, too
    const double t0 = ds.clock().now();
    for (std::uint64_t s = 0; s < slabs; ++s) {
      const std::uint64_t st[] = {s * zper, 0, 0};
      const std::uint64_t ct[] = {zper, cse.y, cse.x};
      if (!ds.PutVara<double>(v, st, ct, buf).ok()) return 0.0;
    }
    if (!ds.Sync().ok()) return 0.0;
    return MBps(total_bytes, ds.clock().now() - t0);
  }
  // Read benchmark: file contents already "exist" (sizes known); time reads.
  const double t0 = ds.clock().now();
  for (std::uint64_t s = 0; s < slabs; ++s) {
    const std::uint64_t st[] = {s * zper, 0, 0};
    const std::uint64_t ct[] = {zper, cse.y, cse.x};
    if (!ds.GetVara<double>(v, st, ct, buf).ok()) return 0.0;
  }
  return MBps(total_bytes, ds.clock().now() - t0);
}

/// PnetCDF collective access with the given partition.
double RunParallel(const Case& cse, unsigned mask, int nprocs, bool is_write,
                   const simmpi::Info& info) {
  pfs::Config pcfg = bench::SdscBlueHorizon();
  pcfg.discard_data = true;
  pfs::FileSystem fs(pcfg);
  const std::uint64_t total_bytes = cse.z * cse.y * cse.x * 8;
  double bw = 0.0;

  simmpi::Run(
      nprocs,
      [&](simmpi::Comm& comm) {
        auto ds = pnetcdf::Dataset::Create(comm, fs, "tt.nc", info).value();
        const int zd = ds.DefDim("level", cse.z).value();
        const int yd = ds.DefDim("latitude", cse.y).value();
        const int xd = ds.DefDim("longitude", cse.x).value();
        const int v =
            ds.DefVar("tt", ncformat::NcType::kDouble, {zd, yd, xd}).value();
        if (!ds.EndDef().ok()) return;

        int f[3];
        Decompose(nprocs, mask, f);
        const std::uint64_t dims[3] = {cse.z, cse.y, cse.x};
        std::uint64_t start[3], count[3];
        int rem = comm.rank();
        for (int d = 2; d >= 0; --d) {
          const int coord = rem % f[d];
          rem /= f[d];
          count[d] = dims[d] / static_cast<std::uint64_t>(f[d]);
          start[d] = count[d] * static_cast<std::uint64_t>(coord);
        }
        std::vector<double> mine(count[0] * count[1] * count[2], 2.5);

        if (is_write) {
          comm.SyncClocksToMax();
          const double t0 = comm.clock().now();
          if (!ds.PutVaraAll<double>(v, start, count, mine).ok()) return;
          if (!ds.Sync().ok()) return;
          comm.SyncClocksToMax();
          if (comm.rank() == 0)
            bw = MBps(total_bytes, comm.clock().now() - t0);
        } else {
          comm.SyncClocksToMax();
          const double t0 = comm.clock().now();
          if (!ds.GetVaraAll<double>(v, start, count, mine).ok()) return;
          comm.SyncClocksToMax();
          if (comm.rank() == 0)
            bw = MBps(total_bytes, comm.clock().now() - t0);
        }
        (void)ds.Close();
      },
      bench::Sp2Cost());
  return bw;
}

void RunChart(const Case& cse, bool is_write, bench::Recorder& rec,
              const simmpi::Info& info) {
  std::printf("\n=== Figure 6: %s %s ===\n", is_write ? "Write" : "Read",
              cse.label);
  std::printf("(bandwidth in MB/s; first column is the serial netCDF "
              "library on 1 processor)\n");
  std::printf("%-8s %10s", "nprocs", "serial");
  for (const auto& p : kPartitions) std::printf(" %9s", p.name);
  std::printf("\n");

  const char* op = is_write ? "write" : "read";
  rec.BeginConfig();
  const double serial_bw = RunSerial(cse, is_write);
  rec.EndConfig(bench::JsonObj()
                    .Str("op", op)
                    .Str("case", cse.label)
                    .Str("partition", "serial")
                    .Int("nprocs", 1),
                bench::JsonObj().Num("mbps", serial_bw));
  bool first = true;
  for (int np : cse.procs) {
    if (first) {
      std::printf("%-8d %10.1f", np, serial_bw);
    } else {
      std::printf("%-8d %10s", np, "-");
    }
    for (const auto& p : kPartitions) {
      rec.BeginConfig();
      const double bw = RunParallel(cse, p.mask, np, is_write, info);
      rec.EndConfig(bench::JsonObj()
                        .Str("op", op)
                        .Str("case", cse.label)
                        .Str("partition", p.name)
                        .Int("nprocs", static_cast<std::uint64_t>(np)),
                    bench::JsonObj().Num("mbps", bw));
      std::printf(" %9.1f", bw);
    }
    std::printf("\n");
    first = false;
  }
  std::fflush(stdout);
}

int Run(const Args& args, bench::Recorder& rec) {
  const std::string size = args.Get("size", "all");
  const std::string op = args.Get("op", "all");
  const bool quick = args.Has("quick");
  simmpi::Info info;
  bench::ApplyHintOverrides(args, info);

  // 64 MB: 256 x 256 x 128 doubles; 1 GB: 512^3 doubles (as in §5.1 the
  // most significant dimension is Z = level, least significant X =
  // longitude).
  std::vector<Case> cases;
  if (size == "64mb" || size == "all")
    cases.push_back({"64 MB (tt 256x256x128, double)", 256, 256, 128,
                     bench::ProcsList(args, quick ? std::vector<int>{1, 4, 16}
                                                  : std::vector<int>{1, 2, 4,
                                                                     8, 16})});
  if (size == "1gb" || size == "all")
    cases.push_back({"1 GB (tt 512x512x512, double)", 512, 512, 512,
                     bench::ProcsList(args, quick
                                                ? std::vector<int>{1, 16}
                                                : std::vector<int>{1, 4, 16,
                                                                   32})});

  std::printf("PnetCDF reproduction - Figure 6 scalability benchmark\n");
  std::printf("Platform: SDSC Blue Horizon-like (12 I/O servers, GPFS-style "
              "striping)\n");
  for (const auto& cse : cases) {
    if (op == "write" || op == "all")
      RunChart(cse, /*is_write=*/true, rec, info);
    if (op == "read" || op == "all")
      RunChart(cse, /*is_write=*/false, rec, info);
  }
  return 0;
}

const bench::BenchDef kBench{
    "fig6_scalability",
    "Figure 6: serial vs parallel netCDF scalability (LBL tt(Z,Y,X) sweep)",
    {"size", "op", "procs", "quick"},
    Run};

}  // namespace

BENCH_REGISTER(kBench)
