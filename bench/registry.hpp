// Bench registry: every bench/bench_*.cpp exposes its driver as a
// registered Run(const bench::Args&, bench::Recorder&) entry point instead
// of an orphan main(), so one CLI (ncbench) can run named suites in-process
// and the per-bench executables share a single standalone driver
// (bench/standalone_main.cpp). A grep lint (tests/bench_registry_lint.cmake)
// enforces that no bench file defines its own main and that every one
// registers here.
#pragma once

#include <string>
#include <vector>

#include "bench/bench_common.hpp"

namespace bench {

struct BenchDef {
  const char* name;     ///< stable id, also the "bench" field of records
  const char* summary;  ///< one line for --list / usage output
  /// Accepted --key flags beyond the driver-level ones (--json, --trace,
  /// --hints).
  /// A trailing '*' is a prefix wildcard (e.g. "benchmark_*").
  std::vector<std::string> flags;
  int (*run)(const Args&, Recorder&);
};

/// All benches registered in this binary, in registration order.
const std::vector<const BenchDef*>& AllBenches();

/// nullptr when no bench of that name is linked in.
const BenchDef* FindBench(const std::string& name);

/// Called by BENCH_REGISTER at static-init time.
bool RegisterBench(const BenchDef& def);

/// Shared run path for standalone drivers and ncbench: rejects unknown
/// flags with a usage message (exit 2), runs the bench, and propagates a
/// Recorder append failure as exit 2. Returns the process exit code.
int RunBench(const BenchDef& def, const Args& args, Recorder& rec);

/// One bench invocation inside a suite.
struct SuiteEntry {
  const char* bench;
  std::vector<std::string> args;
};

/// A named suite ncbench can run as a whole. The `smoke` suite is
/// deterministic by construction (every entry is single-writer: one rank,
/// or cb_nodes=1 so only one aggregator touches the simulated file system)
/// — its consolidated output is byte-stable run to run and backs the
/// committed regression baseline (bench/baselines/smoke.json).
struct Suite {
  const char* name;
  const char* summary;
  std::vector<SuiteEntry> entries;
};

const std::vector<Suite>& Suites();
const Suite* FindSuite(const std::string& name);

}  // namespace bench

/// Registers `def` (a namespace-scope const bench::BenchDef) at static-init.
#define BENCH_REGISTER(def)                          \
  static const bool bench_registered_at_##__LINE__ = \
      ::bench::RegisterBench(def);
