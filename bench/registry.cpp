#include "bench/registry.hpp"

#include <cstdio>

namespace bench {

namespace {

std::vector<const BenchDef*>& MutableBenches() {
  static std::vector<const BenchDef*> benches;
  return benches;
}

void PrintUsage(const BenchDef& def) {
  std::fprintf(stderr, "%s: %s\nflags:", def.name, def.summary);
  for (const auto& f : def.flags) std::fprintf(stderr, " --%s", f.c_str());
  std::fprintf(stderr, " --json --trace --hints\n");
}

}  // namespace

const std::vector<const BenchDef*>& AllBenches() { return MutableBenches(); }

const BenchDef* FindBench(const std::string& name) {
  for (const BenchDef* b : MutableBenches())
    if (name == b->name) return b;
  return nullptr;
}

bool RegisterBench(const BenchDef& def) {
  MutableBenches().push_back(&def);
  return true;
}

int RunBench(const BenchDef& def, const Args& args, Recorder& rec) {
  std::vector<std::string> allowed = def.flags;
  allowed.emplace_back("json");
  allowed.emplace_back("trace");
  allowed.emplace_back("hints");
  const auto unknown = args.UnknownFlags(allowed);
  if (!unknown.empty()) {
    for (const auto& u : unknown)
      std::fprintf(stderr, "%s: unknown argument '%s'\n", def.name, u.c_str());
    PrintUsage(def);
    return 2;
  }
  const int rc = def.run(args, rec);
  if (rc != 0) return rc;
  if (rec.io_failed()) {
    std::fprintf(stderr, "%s: failed to write results to %s\n", def.name,
                 rec.path().c_str());
    return 2;
  }
  return 0;
}

}  // namespace bench
