// Microbenchmarks (google-benchmark): netCDF classic header encode/decode
// and layout computation as the schema grows — the costs behind open,
// enddef, and the root's header broadcast.
#include <benchmark/benchmark.h>

#include <string>
#include <vector>

#include "bench/bench_common.hpp"
#include "bench/microbench.hpp"
#include "bench/registry.hpp"
#include "format/header.hpp"

namespace {

using ncformat::Attr;
using ncformat::Header;
using ncformat::NcType;

Header MakeHeader(int nvars) {
  Header h;
  h.dims = {{"time", ncformat::kUnlimitedLen}, {"z", 64}, {"y", 64}, {"x", 64}};
  h.gatts.push_back(Attr::Text("title", "microbenchmark header"));
  for (int v = 0; v < nvars; ++v) {
    ncformat::Var var;
    var.name = "variable_" + std::to_string(v);
    var.type = v % 2 ? NcType::kFloat : NcType::kDouble;
    var.dimids = v % 3 ? std::vector<std::int32_t>{1, 2, 3}
                       : std::vector<std::int32_t>{0, 2, 3};
    var.attrs.push_back(Attr::Text("units", "si"));
    h.vars.push_back(std::move(var));
  }
  (void)h.ComputeLayout();
  return h;
}

void BM_HeaderEncode(benchmark::State& state) {
  Header h = MakeHeader(static_cast<int>(state.range(0)));
  std::vector<std::byte> bytes;
  for (auto _ : state) {
    bytes.clear();
    h.Encode(bytes);
    benchmark::DoNotOptimize(bytes.data());
  }
  state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(bytes.size()));
}
BENCHMARK(BM_HeaderEncode)->Arg(8)->Arg(64)->Arg(512);

void BM_HeaderDecode(benchmark::State& state) {
  Header h = MakeHeader(static_cast<int>(state.range(0)));
  std::vector<std::byte> bytes;
  h.Encode(bytes);
  for (auto _ : state) {
    auto r = Header::Decode(bytes);
    benchmark::DoNotOptimize(r.ok());
  }
  state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(bytes.size()));
}
BENCHMARK(BM_HeaderDecode)->Arg(8)->Arg(64)->Arg(512);

void BM_ComputeLayout(benchmark::State& state) {
  Header h = MakeHeader(static_cast<int>(state.range(0)));
  for (auto _ : state) {
    benchmark::DoNotOptimize(h.ComputeLayout().ok());
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          state.range(0));
}
BENCHMARK(BM_ComputeLayout)->Arg(8)->Arg(64)->Arg(512);

void BM_VarIdLookup(benchmark::State& state) {
  Header h = MakeHeader(static_cast<int>(state.range(0)));
  const std::string last = "variable_" + std::to_string(state.range(0) - 1);
  for (auto _ : state) {
    benchmark::DoNotOptimize(h.FindVar(last));
  }
}
BENCHMARK(BM_VarIdLookup)->Arg(8)->Arg(64)->Arg(512);

int Run(const bench::Args& args, bench::Recorder& rec) {
  return bench::RunMicro(args, rec,
                         "BM_HeaderEncode|BM_HeaderDecode|BM_ComputeLayout|"
                         "BM_VarIdLookup");
}

const bench::BenchDef kBench{
    "micro_header",
    "netCDF header encode/decode/layout microbenchmarks",
    {"benchmark_*"},
    Run};

}  // namespace

BENCH_REGISTER(kBench)
