// Virtual-platform presets for the paper-figure benchmarks.
//
// These loosely calibrate the PFS/network cost model to the two testbeds of
// the paper's §5. Absolute numbers are not the goal (our substrate is a
// simulator, not the authors' machines) — the presets are chosen so that the
// *shape* of the results carries: single-client rates in the low hundreds of
// MB/s, aggregate rates that saturate at a fixed server pool, writes slower
// than reads, and a heavy per-request latency that rewards large contiguous
// transfers.
#pragma once

#include "pfs/pfs.hpp"
#include "simmpi/clock.hpp"

namespace bench {

/// SDSC Blue Horizon-like platform (Figure 6): "12 I/O nodes ... aggregate
/// disk space is 5 TB and the peak I/O bandwidth is 1.5 GB/s".
inline pfs::Config SdscBlueHorizon() {
  pfs::Config c;
  c.num_servers = 12;
  c.stripe_size = 256 * 1024;
  c.client_read_ns_per_byte = 4.0;    // ~250 MB/s per client, reads
  c.client_write_ns_per_byte = 10.0;  // ~100 MB/s per client, writes
  c.client_request_ns = 30'000.0;
  c.server_read_ns_per_byte = 16.0;  // ~62 MB/s/server, ~750 MB/s aggregate
  c.server_write_ns_per_byte = 40.0; // ~25 MB/s/server, ~300 MB/s aggregate
  c.server_request_ns = 800'000.0;
  return c;
}

/// ASCI White Frost-like platform (Figure 7): "a 68 compute node system ...
/// attached to a 2-node I/O system running GPFS".
inline pfs::Config AsciFrost() {
  pfs::Config c;
  c.num_servers = 2;
  c.stripe_size = 256 * 1024;
  c.client_read_ns_per_byte = 3.0;
  c.client_write_ns_per_byte = 6.0;
  c.client_request_ns = 30'000.0;
  c.server_read_ns_per_byte = 8.0;    // ~125 MB/s/server read
  c.server_write_ns_per_byte = 14.0;  // ~70 MB/s/server, ~140 MB/s aggregate
  c.server_request_ns = 500'000.0;
  return c;
}

/// SP-2-era switch fabric for the message-passing cost model.
inline simmpi::CostModel Sp2Cost() {
  simmpi::CostModel c;
  c.msg_latency_ns = 20'000.0;
  c.msg_ns_per_byte = 2.0;  // ~500 MB/s links
  c.mem_copy_ns_per_byte = 0.35;
  c.sw_overhead_ns = 2'000.0;
  return c;
}

}  // namespace bench
