// Multi-tenant fairness: a "storm" tenant writes checkpoint files while a
// "steady" tenant runs open/read/close churn against the same pfs, under
// each queue discipline (see pfs/sched.hpp). Unlike the bandwidth benches,
// the committed numbers are *fairness invariants*: the steady tenant's p99
// read queue-wait per discipline, the starvation verdicts against its solo
// baseline (the acceptance gate — WFQ/EDF keep p99 within 2x of solo while
// plain FCFS shows the starvation), EDF deadline misses, admission-control
// backpressure, and the deterministic per-tenant byte/request totals. The
// committed baseline (bench/baselines/tenants.json) freezes all of them at
// zero tolerance, so any change to the scheduler, pacing arithmetic, tenant
// threading, or admission control that shifts a verdict trips
// `ncbench --suite=tenants --check`.
//
// Determinism: the pfs grants requests in real-time call order, so the
// workload is shaped to be permutation-invariant:
//   * the storm phase runs to completion (real time) before the readback
//     phase starts, but both start their virtual clocks at 0 — the groups
//     are co-located in *virtual* time, which is what the servers schedule;
//   * collective storm writes are pinned single-writer (cb_nodes=1, the
//     smoke-suite determinism note in suites.cpp);
//   * concurrent independent requests (the steady group's churn reads, the
//     admission phase's per-rank writes) are issued in rank order behind an
//     IssueToken — plain process-level synchronization, no simmpi messages,
//     so rank clocks are untouched and the requests still overlap in
//     *virtual* time, the axis the servers actually arbitrate. Racing the
//     rank threads instead would let host scheduling pick which rank eats
//     which queue slot: one logical read expands into several sequential pfs
//     requests (data plus checksum chunks), and once per-rank clocks diverge
//     mid-batch the grant order — and the tail of the wait distribution —
//     is no longer a multiset invariant.
//
// Usage: tenants [--procs=4] [--hints=k=v,...]
#include <condition_variable>
#include <cstdio>
#include <cstring>
#include <mutex>
#include <string>
#include <vector>

#include "bench/bench_common.hpp"
#include "bench/registry.hpp"
#include "pfs/pfs.hpp"
#include "pnetcdf/dataset.hpp"
#include "simmpi/runtime.hpp"

namespace {

using pfs::QosDiscipline;
using pfs::QosPolicy;

constexpr std::uint64_t kSteadyRows = 512;   // x 256 ints = 512 KiB variable
constexpr std::uint64_t kSteadyCols = 256;
constexpr std::uint64_t kStormRecs = 4;      // records per checkpoint file
constexpr std::uint64_t kStormCells = 786432;  // 3 MiB per record (12 stripes)
constexpr int kChurnCycles = 3;
constexpr double kSteadyDeadlineNs = 6e7;    // 60 ms: roomy solo, dead FCFS

struct Phase {
  const char* name;
  QosDiscipline discipline = QosDiscipline::kFcfs;
  bool storm = false;            ///< run the checkpoint storm at all
  bool storm_independent = false;  ///< per-rank independent record writes
  double storm_weight = 1.0;       ///< pnc_qos_weight for the storm tenant
  double steady_deadline_ns = 0;   ///< pnc_qos_deadline_ns for steady reads
  std::uint64_t storm_cap = 0;     ///< pnc_qos_cap_bytes for the storm tenant
};

std::vector<Phase> BuildPhases() {
  std::vector<Phase> p;
  p.push_back({"solo", QosDiscipline::kFcfs, false, false, 1.0, 0, 0});
  p.push_back({"fcfs", QosDiscipline::kFcfs, true, false, 1.0, 0, 0});
  p.push_back({"wfq", QosDiscipline::kWfq, true, false, 1.0 / 16.0, 0, 0});
  p.push_back(
      {"edf", QosDiscipline::kEdf, true, false, 1.0, kSteadyDeadlineNs, 0});
  p.push_back({"admission", QosDiscipline::kFcfs, true, true, 1.0, 0,
               4ULL << 20});
  return p;
}

struct Outcome {
  double steady_p99_us = 0;   ///< p99 per-request queue wait, steady tenant
  double steady_p50_us = 0;
  std::uint64_t steady_events = 0;
  std::uint64_t steady_bytes = 0;
  std::uint64_t steady_backfilled = 0;
  std::uint64_t steady_misses = 0;
  std::uint64_t storm_bytes = 0;
  std::uint64_t storm_paced = 0;
  double storm_admission_us = 0;
  int errors = 0;
};

void Accumulate(int* errors, const pnc::Status& st) {
  if (!st.ok()) ++*errors;
}

/// Create and fill steady.nc under the steady tenant, then rewind virtual
/// time and zero every counter: the measured window covers only the
/// co-located storm + churn.
void SetupSteadyFile(pfs::FileSystem& fs, const simmpi::Info& steady_info,
                     int nprocs, int* errors) {
  simmpi::Run(nprocs, [&](simmpi::Comm& c) {
    auto r = pnetcdf::Dataset::Create(c, fs, "steady.nc", steady_info);
    if (!r.ok()) {
      Accumulate(errors, r.status());
      return;
    }
    auto ds = std::move(r).value();
    const auto y = ds.DefDim("y", kSteadyRows);
    const auto x = ds.DefDim("x", kSteadyCols);
    const auto v =
        ds.DefVar("field", ncformat::NcType::kInt, {y.value(), x.value()});
    Accumulate(errors, ds.EndDef());
    const std::uint64_t rows = kSteadyRows / static_cast<std::uint64_t>(c.size());
    std::vector<std::int32_t> mine(rows * kSteadyCols);
    for (std::size_t i = 0; i < mine.size(); ++i)
      mine[i] = static_cast<std::int32_t>(i + 1000 * c.rank());
    const std::uint64_t start[] = {static_cast<std::uint64_t>(c.rank()) * rows,
                                   0};
    const std::uint64_t count[] = {rows, kSteadyCols};
    Accumulate(errors, ds.PutVaraAll<std::int32_t>(v.value(), start, count,
                                                   mine));
    Accumulate(errors, ds.Close());
  });
  fs.ResetTime();
  fs.ResetStats();
  fs.ResetTenantCounters();
}

/// Pins the real-time order of concurrent independent I/O calls to rank
/// order. The pfs grants requests in call order, so racing rank threads
/// would hand the queue slots out by host thread scheduling; this is plain
/// process-level synchronization — no simmpi messages — so virtual clocks
/// are untouched and the calls still overlap in virtual time.
struct IssueToken {
  std::mutex mu;
  std::condition_variable cv;
  int turn = 0;

  template <typename Fn>
  void InTurn(int me, Fn&& fn) {
    std::unique_lock<std::mutex> lk(mu);
    cv.wait(lk, [&] { return turn == me; });
    lk.unlock();
    fn();
    lk.lock();
    ++turn;
    cv.notify_all();
  }
};

/// The checkpoint storm: `nfiles` datasets of kStormRecs 3 MiB records each,
/// written collectively (single aggregator) or — for the admission phase —
/// one whole record per rank, independently and concurrently.
void RunStorm(pfs::FileSystem& fs, const simmpi::Info& storm_info, int nprocs,
              bool independent, int* errors) {
  IssueToken token;
  const int nfiles = independent ? 1 : 2;
  for (int file = 0; file < nfiles; ++file) {
    const std::string path = "storm" + std::to_string(file) + ".nc";
    simmpi::Run(nprocs, [&](simmpi::Comm& c) {
      auto r = pnetcdf::Dataset::Create(c, fs, path, storm_info);
      if (!r.ok()) {
        Accumulate(errors, r.status());
        return;
      }
      auto ds = std::move(r).value();
      const auto t = ds.DefDim("time", kStormRecs);
      const auto cell = ds.DefDim("cell", kStormCells);
      const auto v =
          ds.DefVar("chk", ncformat::NcType::kInt, {t.value(), cell.value()});
      Accumulate(errors, ds.EndDef());
      if (independent) {
        // Every rank dumps one whole record at once: four identical 3 MiB
        // requests in flight against the tenant's outstanding-bytes cap.
        Accumulate(errors, ds.BeginIndepData());
        c.Barrier();
        // Four 3 MiB dumps, issued in rank order but overlapping in virtual
        // time: rank r's bytes are still in flight when rank r+1 arrives,
        // which is exactly what the admission cap must push back on.
        std::vector<std::int32_t> rec(kStormCells,
                                      static_cast<std::int32_t>(c.rank()));
        const std::uint64_t start[] = {static_cast<std::uint64_t>(c.rank()),
                                       0};
        const std::uint64_t count[] = {1, kStormCells};
        token.InTurn(c.rank(), [&] {
          Accumulate(errors,
                     ds.PutVara<std::int32_t>(v.value(), start, count, rec));
        });
        Accumulate(errors, ds.EndIndepData());
      } else {
        const std::uint64_t cells =
            kStormCells / static_cast<std::uint64_t>(c.size());
        std::vector<std::int32_t> mine(cells,
                                       static_cast<std::int32_t>(c.rank()));
        for (std::uint64_t rec = 0; rec < kStormRecs; ++rec) {
          const std::uint64_t start[] = {
              rec, static_cast<std::uint64_t>(c.rank()) * cells};
          const std::uint64_t count[] = {1, cells};
          Accumulate(errors, ds.PutVaraAll<std::int32_t>(v.value(), start,
                                                         count, mine));
        }
      }
      Accumulate(errors, ds.Close());
    });
  }
}

/// The steady tenant's churn: open / independent full-variable read / close,
/// kChurnCycles times. Reads are issued in rank order (IssueToken) so the
/// pfs grant order is deterministic (see the file comment).
void RunChurn(pfs::FileSystem& fs, const simmpi::Info& steady_info, int nprocs,
              int* errors) {
  IssueToken token;
  simmpi::Run(nprocs, [&](simmpi::Comm& c) {
    for (int cycle = 0; cycle < kChurnCycles; ++cycle) {
      auto r = pnetcdf::Dataset::Open(c, fs, "steady.nc", /*writable=*/false,
                                      steady_info);
      if (!r.ok()) {
        Accumulate(errors, r.status());
        return;
      }
      auto ds = std::move(r).value();
      const auto vid = ds.VarId("field");
      if (!vid.ok()) {
        Accumulate(errors, vid.status());
        return;
      }
      Accumulate(errors, ds.BeginIndepData());
      c.Barrier();  // co-locate the batch in virtual time
      std::vector<std::int32_t> all(kSteadyRows * kSteadyCols);
      const std::uint64_t start[] = {0, 0};
      const std::uint64_t count[] = {kSteadyRows, kSteadyCols};
      token.InTurn(cycle * c.size() + c.rank(), [&] {
        Accumulate(errors,
                   ds.GetVara<std::int32_t>(vid.value(), start, count, all));
      });
      Accumulate(errors, ds.EndIndepData());
      Accumulate(errors, ds.Close());
    }
  });
}

Outcome RunOne(const Phase& ph, int nprocs, const bench::Args& args) {
  simmpi::Info steady_info;
  steady_info.Set("cb_nodes", "1");  // single-writer determinism
  steady_info.Set("pnc_tenant", "steady");
  if (ph.steady_deadline_ns > 0)
    steady_info.Set("pnc_qos_deadline_ns",
                    std::to_string(ph.steady_deadline_ns));
  simmpi::Info storm_info;
  storm_info.Set("cb_nodes", "1");
  storm_info.Set("pnc_tenant", "storm");
  if (ph.storm_weight != 1.0)
    storm_info.Set("pnc_qos_weight", std::to_string(ph.storm_weight));
  if (ph.storm_cap != 0)
    storm_info.Set("pnc_qos_cap_bytes", std::to_string(ph.storm_cap));
  bench::ApplyHintOverrides(args, steady_info);
  bench::ApplyHintOverrides(args, storm_info);

  pfs::FileSystem fs;
  QosPolicy policy;
  policy.discipline = ph.discipline;
  fs.SetQosPolicy(policy);

  Outcome out;
  SetupSteadyFile(fs, steady_info, nprocs, &out.errors);
  if (ph.storm)
    RunStorm(fs, storm_info, nprocs, ph.storm_independent, &out.errors);
  RunChurn(fs, steady_info, nprocs, &out.errors);

  for (const pfs::TenantUsage& u : fs.TenantUsageSnapshot()) {
    if (u.cls.name == "steady") {
      out.steady_p99_us = pfs::WaitPercentile(u.ctr.wait_samples, 99) / 1e3;
      out.steady_p50_us = pfs::WaitPercentile(u.ctr.wait_samples, 50) / 1e3;
      out.steady_events = u.ctr.server_events;
      out.steady_bytes = u.ctr.served_bytes;
      out.steady_backfilled = u.ctr.backfilled_events;
      out.steady_misses = u.ctr.deadline_misses;
    } else if (u.cls.name == "storm") {
      out.storm_bytes = u.ctr.served_bytes;
      out.storm_paced = u.ctr.paced_events;
      out.storm_admission_us = u.ctr.admission_wait_ns / 1e3;
    }
  }
  return out;
}

int Run(const bench::Args& args, bench::Recorder& rec) {
  const int nprocs = bench::ProcsList(args, {4})[0];

  std::printf("Tenants: steady readback vs checkpoint storm, %d ranks per "
              "group, %d servers\n",
              nprocs, pfs::Config{}.num_servers);
  std::printf("%-10s | %12s %12s %6s | %9s %6s | %12s %6s | %4s\n", "phase",
              "p99wait(us)", "p50wait(us)", "vs-solo", "stormMiB", "paced",
              "admwait(us)", "misses", "err");

  double solo_p99 = 0;
  std::vector<std::pair<Phase, Outcome>> results;
  for (const Phase& ph : BuildPhases()) {
    rec.BeginConfig();
    const Outcome o = RunOne(ph, nprocs, args);
    if (std::strcmp(ph.name, "solo") == 0) solo_p99 = o.steady_p99_us;
    const double ratio = solo_p99 > 0 ? o.steady_p99_us / solo_p99 : 0;
    rec.EndConfig(
        bench::JsonObj()
            .Str("phase", ph.name)
            .Int("nprocs", static_cast<std::uint64_t>(nprocs)),
        bench::JsonObj()
            .Num("steady_p99_wait_us", o.steady_p99_us)
            .Num("steady_p50_wait_us", o.steady_p50_us)
            .Int("steady_reads", o.steady_events)
            .Int("steady_bytes", o.steady_bytes)
            .Int("steady_backfilled", o.steady_backfilled)
            .Int("steady_deadline_misses", o.steady_misses)
            .Int("storm_bytes", o.storm_bytes)
            .Int("storm_paced", o.storm_paced)
            .Num("storm_admission_wait_us", o.storm_admission_us)
            .Num("errors", o.errors));
    std::printf("%-10s | %12.1f %12.1f %5.1fx | %9.1f %6llu | %12.1f %6llu | "
                "%4d\n",
                ph.name, o.steady_p99_us, o.steady_p50_us, ratio,
                static_cast<double>(o.storm_bytes) / (1 << 20),
                (unsigned long long)o.storm_paced, o.storm_admission_us,
                (unsigned long long)o.steady_misses, o.errors);
    std::fflush(stdout);
    results.emplace_back(ph, o);
  }

  // ---- the fairness verdicts the baseline freezes (0 = healthy) ----
  const auto find = [&results](const char* name) -> const Outcome& {
    for (const auto& [ph, o] : results)
      if (std::strcmp(ph.name, name) == 0) return o;
    static const Outcome kNone;
    return kNone;
  };
  const Outcome& fcfs = find("fcfs");
  const Outcome& wfq = find("wfq");
  const Outcome& edf = find("edf");
  const Outcome& adm = find("admission");
  int total_errors = 0;
  for (const auto& [ph, o] : results) total_errors += o.errors;

  const double bar = 2.0 * solo_p99;  // the acceptance gate: within 2x solo
  const int fcfs_masks_starvation = fcfs.steady_p99_us <= bar ? 1 : 0;
  const int wfq_starved = wfq.steady_p99_us > bar ? 1 : 0;
  const int edf_starved = edf.steady_p99_us > bar ? 1 : 0;
  const int admission_no_backpressure = adm.storm_admission_us > 0 ? 0 : 1;

  rec.BeginConfig();
  rec.EndConfig(
      bench::JsonObj().Str("phase", "verdict").Int(
          "nprocs", static_cast<std::uint64_t>(nprocs)),
      bench::JsonObj()
          .Num("fcfs_masks_starvation", fcfs_masks_starvation)
          .Num("wfq_starved", wfq_starved)
          .Num("edf_starved", edf_starved)
          .Int("edf_deadline_misses", edf.steady_misses)
          .Num("admission_no_backpressure", admission_no_backpressure)
          .Num("qos_errors", total_errors)
          .Num("fcfs_p99_over_solo",
               solo_p99 > 0 ? fcfs.steady_p99_us / solo_p99 : 0)
          .Num("wfq_p99_over_solo",
               solo_p99 > 0 ? wfq.steady_p99_us / solo_p99 : 0)
          .Num("edf_p99_over_solo",
               solo_p99 > 0 ? edf.steady_p99_us / solo_p99 : 0));

  std::printf("\nverdicts (0 = healthy): fcfs_masks_starvation=%d "
              "wfq_starved=%d edf_starved=%d\nedf_deadline_misses=%llu "
              "admission_no_backpressure=%d qos_errors=%d\n",
              fcfs_masks_starvation, wfq_starved, edf_starved,
              (unsigned long long)edf.steady_misses, admission_no_backpressure,
              total_errors);
  std::printf("\np99 is the steady tenant's per-request queue wait "
              "(pfs::TenantCounters.wait_samples);\nthe gate is p99 <= 2x "
              "solo under WFQ/EDF while FCFS exceeds it (starvation).\nAll "
              "columns are deterministic invariants backed by "
              "bench/baselines/tenants.json\nat zero tolerance.\n");
  return 0;
}

const bench::BenchDef kBench{
    "tenants",
    "multi-tenant QoS: steady readback vs checkpoint storm under "
    "fcfs/wfq/edf/admission",
    {"procs", "hints"},
    Run};

}  // namespace

BENCH_REGISTER(kBench)
