// Advisor closed loop: run a deliberately mistuned workload (independent
// strided column writes with a starved 4 KiB write-sieve buffer), feed the
// iostat report to the rule-based tuning advisor (iostat/advise.hpp), apply
// the recommendations it emits, and rerun. The committed numbers are the
// advisor's contract: the mistuned and advised virtual makespans, the
// speedup, the recommendation count, which rules fired, and the two
// verdicts (0 = healthy) — `too_few_recommendations` (the ISSUE gate wants
// >= 3 ranked, evidence-backed recommendations on this workload) and
// `advised_not_faster` (applying the advice must improve virtual time).
// bench/baselines/advise.json freezes all of them at zero tolerance.
//
// Determinism: the mistuned phase's concurrent independent writes are
// issued in rank order behind an IssueToken (the bench_tenants.cpp
// technique — process-level synchronization only, so virtual clocks are
// untouched and the requests still overlap in virtual time, the axis the
// pfs actually arbitrates). The advised phase is collective with cb_nodes
// pinned to 1 (the smoke-suite single-writer rule); the advisor's cb_nodes
// hint, if any, is deliberately not applied for that reason.
//
// Usage: advise [--procs=4] [--hints=k=v,...]
#include <condition_variable>
#include <cstdio>
#include <mutex>
#include <string>
#include <vector>

#include "bench/bench_common.hpp"
#include "bench/registry.hpp"
#include "iostat/advise.hpp"
#include "pfs/pfs.hpp"
#include "pnetcdf/dataset.hpp"
#include "simmpi/runtime.hpp"

namespace {

constexpr std::uint64_t kRows = 8192;  // x 8 B x procs columns = 256 KiB @ 4

void Accumulate(int* errors, const pnc::Status& st) {
  if (!st.ok()) ++*errors;
}

/// Rank-order issuance for concurrent independent calls (see the
/// determinism note atop bench_tenants.cpp).
struct IssueToken {
  std::mutex mu;
  std::condition_variable cv;
  int turn = 0;

  template <typename Fn>
  void InTurn(int me, Fn&& fn) {
    std::unique_lock<std::mutex> lk(mu);
    cv.wait(lk, [&] { return turn == me; });
    lk.unlock();
    fn();
    lk.lock();
    ++turn;
    cv.notify_all();
  }
};

struct PhaseResult {
  double ms = 0;  ///< virtual makespan of the measured write, rank-0 clock
  int errors = 0;
};

/// One pass of the workload: m(kRows, procs) doubles, each rank writing its
/// column (fully interleaved at the file, 8 B extents on a 32 B stride).
PhaseResult RunWorkload(int nprocs, bool collective,
                        const simmpi::Info& info) {
  pfs::FileSystem fs;
  PhaseResult out;
  IssueToken token;
  simmpi::Run(nprocs, [&](simmpi::Comm& c) {
    auto r = pnetcdf::Dataset::Create(c, fs, "advise.nc", info);
    if (!r.ok()) {
      if (c.rank() == 0) ++out.errors;
      return;
    }
    auto ds = std::move(r).value();
    const auto rd = ds.DefDim("row", kRows);
    const auto cd = ds.DefDim("col", static_cast<std::uint64_t>(c.size()));
    const auto v =
        ds.DefVar("m", ncformat::NcType::kDouble, {rd.value(), cd.value()});
    Accumulate(&out.errors, ds.EndDef());
    std::vector<double> mine(kRows, 1.0 + c.rank());
    const std::uint64_t start[] = {0, static_cast<std::uint64_t>(c.rank())};
    const std::uint64_t count[] = {kRows, 1};
    c.SyncClocksToMax();
    const double t0 = c.clock().now();
    if (collective) {
      Accumulate(&out.errors, ds.PutVaraAll<double>(v.value(), start, count,
                                                    mine));
    } else {
      Accumulate(&out.errors, ds.BeginIndepData());
      c.Barrier();  // co-locate the batch in virtual time
      token.InTurn(c.rank(), [&] {
        Accumulate(&out.errors,
                   ds.PutVara<double>(v.value(), start, count, mine));
      });
      Accumulate(&out.errors, ds.EndIndepData());
    }
    c.SyncClocksToMax();
    if (c.rank() == 0) out.ms = (c.clock().now() - t0) / 1e6;
    Accumulate(&out.errors, ds.Close());
  });
  return out;
}

int Run(const bench::Args& args, bench::Recorder& rec) {
  const int nprocs = bench::ProcsList(args, {4})[0];
  std::printf("Advise: mistuned -> advisor -> advised closed loop, %d ranks, "
              "%d servers\n\n",
              nprocs, pfs::Config{}.num_servers);

  // ---- mistuned: independent strided writes, 4 KiB write-sieve buffer ----
  simmpi::Info bad;
  bad.Set("ind_wr_buffer_size", "4096");
  bench::ApplyHintOverrides(args, bad);
  iostat::Registry::Get().Reset();
  rec.BeginConfig();
  const PhaseResult mis = RunWorkload(nprocs, /*collective=*/false, bad);
  const iostat::Report mis_rep = iostat::BuildReport();
  const std::vector<iostat::Recommendation> recs = iostat::Advise(mis_rep);
  std::printf("mistuned: indep strided write, ind_wr_buffer_size=4096, "
              "%.3f virtual ms\n\n", mis.ms);
  std::fputs(iostat::PrettyPrintAdvice(recs).c_str(), stdout);
  rec.EndConfig(bench::JsonObj()
                    .Str("phase", "mistuned")
                    .Int("nprocs", static_cast<std::uint64_t>(nprocs)),
                bench::JsonObj()
                    .Num("virtual_ms", mis.ms)
                    .Int("recommendations", recs.size())
                    .Num("errors", mis.errors));

  // ---- advised: apply what the advisor said ----
  simmpi::Info good;
  bool use_collective = false;
  for (const iostat::Recommendation& r : recs) {
    if (r.rule == "use-collective") use_collective = true;
    // cb_nodes stays pinned below: multi-aggregator runs are not
    // deterministic under the real-time pfs grant order.
    if (!r.hint_key.empty() && r.hint_key != "cb_nodes")
      good.Set(r.hint_key, r.hint_value);
  }
  good.Set("cb_nodes", "1");
  bench::ApplyHintOverrides(args, good);
  iostat::Registry::Get().Reset();
  rec.BeginConfig();
  const PhaseResult adv = RunWorkload(nprocs, use_collective, good);
  std::printf("\nadvised:  %s write, advisor hints applied, %.3f virtual "
              "ms\n", use_collective ? "collective" : "independent", adv.ms);
  rec.EndConfig(bench::JsonObj()
                    .Str("phase", "advised")
                    .Int("nprocs", static_cast<std::uint64_t>(nprocs)),
                bench::JsonObj()
                    .Num("virtual_ms", adv.ms)
                    .Num("errors", adv.errors));

  // ---- the advisor verdicts the baseline freezes (0 = healthy) ----
  const auto fired = [&recs](const char* rule) -> int {
    for (const auto& r : recs)
      if (r.rule == rule) return 1;
    return 0;
  };
  const double speedup = adv.ms > 0 ? mis.ms / adv.ms : 0;
  const int too_few = recs.size() >= 3 ? 0 : 1;
  const int not_faster = adv.ms < mis.ms ? 0 : 1;
  rec.BeginConfig();
  rec.EndConfig(bench::JsonObj()
                    .Str("phase", "verdict")
                    .Int("nprocs", static_cast<std::uint64_t>(nprocs)),
                bench::JsonObj()
                    .Num("too_few_recommendations", too_few)
                    .Num("advised_not_faster", not_faster)
                    .Int("recommendations", recs.size())
                    .Num("advise_speedup", speedup)
                    .Num("rule_use_collective", fired("use-collective"))
                    .Num("rule_raise_wr_sieve", fired("raise-wr-sieve-buffer"))
                    .Num("rule_restripe", fired("restripe-hot-server"))
                    .Num("rule_small_requests", fired("small-pfs-requests"))
                    .Num("advise_errors", mis.errors + adv.errors));

  std::printf("\nspeedup %.2fx, %zu recommendation(s); verdicts (0 = "
              "healthy): too_few_recommendations=%d advised_not_faster=%d\n",
              speedup, recs.size(), too_few, not_faster);
  std::printf("\nall columns are deterministic invariants backed by "
              "bench/baselines/advise.json at zero tolerance.\n");
  return 0;
}

const bench::BenchDef kBench{
    "advise",
    "mistuned workload -> ncstat advisor rules -> advised rerun; freezes the "
    "recommendation set and the speedup",
    {"procs", "hints"},
    Run};

}  // namespace

BENCH_REGISTER(kBench)
