// Ablation: two-phase collective buffering on/off (romio_cb_write), across
// partition patterns of increasing interleaving. Two-phase I/O is the §2/
// §4.1 optimization PnetCDF inherits from ROMIO; the win should grow with
// how finely the ranks' file regions interleave (Z coarsest, X finest).
#include <cstdio>
#include <vector>

#include "bench/bench_common.hpp"
#include "bench/platforms.hpp"
#include "bench/registry.hpp"
#include "pnetcdf/dataset.hpp"
#include "simmpi/runtime.hpp"

namespace {

double RunOne(unsigned mask, bool cb_enabled, const bench::Args& args) {
  pfs::Config pcfg = bench::SdscBlueHorizon();
  pcfg.discard_data = true;
  pfs::FileSystem fs(pcfg);
  const int nprocs = 8;
  const std::uint64_t kZ = 128, kY = 64, kX = 64;
  double ms = 0.0;

  simmpi::Run(
      nprocs,
      [&](simmpi::Comm& comm) {
        simmpi::Info info;
        info.Set("romio_cb_write", cb_enabled ? "enable" : "disable");
        bench::ApplyHintOverrides(args, info);
        auto ds = pnetcdf::Dataset::Create(comm, fs, "t.nc", info).value();
        const int zd = ds.DefDim("z", kZ).value();
        const int yd = ds.DefDim("y", kY).value();
        const int xd = ds.DefDim("x", kX).value();
        const int v =
            ds.DefVar("u", ncformat::NcType::kDouble, {zd, yd, xd}).value();
        (void)ds.EndDef();

        int f[3];
        bench::Decompose(nprocs, mask, f);
        const std::uint64_t dims[3] = {kZ, kY, kX};
        std::uint64_t start[3], count[3];
        int rem = comm.rank();
        for (int d = 2; d >= 0; --d) {
          const int coord = rem % f[d];
          rem /= f[d];
          count[d] = dims[d] / static_cast<std::uint64_t>(f[d]);
          start[d] = count[d] * static_cast<std::uint64_t>(coord);
        }
        std::vector<double> mine(count[0] * count[1] * count[2], 1.0);

        comm.SyncClocksToMax();
        const double t0 = comm.clock().now();
        (void)ds.PutVaraAll<double>(v, start, count, mine);
        comm.SyncClocksToMax();
        if (comm.rank() == 0) ms = (comm.clock().now() - t0) / 1e6;
        (void)ds.Close();
      },
      bench::Sp2Cost());
  return ms;
}

int Run(const bench::Args& args, bench::Recorder& rec) {
  const std::string cb = args.Get("cb", "both");
  std::printf("Ablation: two-phase collective buffering (romio_cb_write)\n");
  std::printf("4 MB write of u(128,64,64) doubles on 8 procs, by partition\n\n");
  std::printf("%-10s %14s %14s %9s\n", "partition", "two-phase(ms)",
              "disabled(ms)", "speedup");
  for (const auto& p : bench::kPartitions) {
    const auto config = [&p](const char* mode) {
      return bench::JsonObj().Str("partition", p.name).Str("cb_write", mode);
    };
    double on = 0.0, off = 0.0;
    if (cb == "enable" || cb == "both") {
      rec.BeginConfig();
      on = RunOne(p.mask, true, args);
      rec.EndConfig(config("enable"), bench::JsonObj().Num("ms", on));
    }
    if (cb == "disable" || cb == "both") {
      rec.BeginConfig();
      off = RunOne(p.mask, false, args);
      rec.EndConfig(config("disable"), bench::JsonObj().Num("ms", off));
    }
    std::printf("%-10s %14.2f %14.2f %8.2fx\n", p.name, on, off,
                on > 0 ? off / on : 0.0);
  }
  std::printf("\nThe win grows with interleaving (X-heavy partitions), the "
              "paper's reason to\nfunnel netCDF access patterns into "
              "MPI-IO collectives.\n");
  return 0;
}

const bench::BenchDef kBench{
    "ablation_twophase",
    "two-phase collective buffering on/off across partition interleavings",
    {"cb"},
    Run};

}  // namespace

BENCH_REGISTER(kBench)
