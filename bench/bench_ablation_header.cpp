// Ablation: header handling (paper §4.3). PnetCDF keeps one header with all
// variable metadata, cached locally on every process after a single
// broadcast at open — inquiry and per-variable access cost no file I/O and
// no synchronization. The HDF5-style design disperses metadata in per-object
// header blocks and opens every object collectively, iterating the namespace
// with real file reads.
//
// This bench opens a file with a growing number of variables and then
// "touches" (locates) every variable once, measuring virtual time per open.
#include <cstdio>
#include <string>
#include <vector>

#include "bench/bench_common.hpp"
#include "bench/platforms.hpp"
#include "bench/registry.hpp"
#include "hdf5lite/h5file.hpp"
#include "pnetcdf/dataset.hpp"
#include "simmpi/runtime.hpp"

namespace {

constexpr int kProcs = 8;

double PnetcdfTouchAll(int nvars, const simmpi::Info& info) {
  pfs::Config pcfg = bench::AsciFrost();
  pfs::FileSystem fs(pcfg);
  double ms = 0.0;
  simmpi::Run(
      kProcs,
      [&](simmpi::Comm& comm) {
        {
          auto ds = pnetcdf::Dataset::Create(comm, fs, "h.nc", info).value();
          const int xd = ds.DefDim("x", 16).value();
          for (int v = 0; v < nvars; ++v)
            (void)ds.DefVar("v" + std::to_string(v), ncformat::NcType::kFloat,
                            {xd});
          (void)ds.EndDef();
          (void)ds.Close();
        }
        auto ds = pnetcdf::Dataset::Open(comm, fs, "h.nc", false, info)
                      .value();
        comm.SyncClocksToMax();
        const double t0 = comm.clock().now();
        // Locate every variable: pure local-memory inquiry on the cached
        // header ("each array can be identified by its permanent ID and
        // accessed at any time by any process").
        long long checksum = 0;
        for (int v = 0; v < nvars; ++v)
          checksum += ds.VarId("v" + std::to_string(v)).value();
        comm.SyncClocksToMax();
        if (comm.rank() == 0 && checksum >= 0)
          ms = (comm.clock().now() - t0) / 1e6;
        (void)ds.Close();
      },
      bench::Sp2Cost());
  return ms;
}

double Hdf5liteTouchAll(int nvars, const simmpi::Info& info) {
  pfs::Config pcfg = bench::AsciFrost();
  pfs::FileSystem fs(pcfg);
  double ms = 0.0;
  simmpi::Run(
      kProcs,
      [&](simmpi::Comm& comm) {
        {
          auto f = hdf5lite::File::Create(comm, fs, "h.h5l", info).value();
          const std::uint64_t dims[] = {16};
          for (int v = 0; v < nvars; ++v) {
            auto ds = f.CreateDataset("v" + std::to_string(v),
                                      ncformat::NcType::kFloat, dims)
                          .value();
            (void)ds.Close();
          }
          (void)f.Close();
        }
        auto f = hdf5lite::File::Open(comm, fs, "h.h5l", false, info).value();
        comm.SyncClocksToMax();
        const double t0 = comm.clock().now();
        // Locate every dataset: collective opens with namespace iteration
        // and header-block file reads.
        for (int v = 0; v < nvars; ++v) {
          auto ds = f.OpenDataset("v" + std::to_string(v)).value();
          (void)ds.Close();
        }
        comm.SyncClocksToMax();
        if (comm.rank() == 0) ms = (comm.clock().now() - t0) / 1e6;
        (void)f.Close();
      },
      bench::Sp2Cost());
  return ms;
}

int Run(const bench::Args& args, bench::Recorder& rec) {
  const std::string lib = args.Get("lib", "both");
  simmpi::Info info;
  bench::ApplyHintOverrides(args, info);
  std::printf("Ablation: header caching vs per-object collective opens\n");
  std::printf("locating every variable once, 8 processes\n\n");
  std::printf("%-8s %16s %18s\n", "nvars", "PnetCDF (ms)", "hdf5lite (ms)");
  for (int n : {4, 16, 64, 256}) {
    const auto config = [n](const char* l) {
      return bench::JsonObj()
          .Int("nvars", static_cast<std::uint64_t>(n))
          .Str("lib", l);
    };
    double pnc_ms = 0.0, h5_ms = 0.0;
    if (lib == "pnetcdf" || lib == "both") {
      rec.BeginConfig();
      pnc_ms = PnetcdfTouchAll(n, info);
      rec.EndConfig(config("pnetcdf"), bench::JsonObj().Num("ms", pnc_ms));
    }
    if (lib == "hdf5lite" || lib == "both") {
      rec.BeginConfig();
      h5_ms = Hdf5liteTouchAll(n, info);
      rec.EndConfig(config("hdf5lite"), bench::JsonObj().Num("ms", h5_ms));
    }
    std::printf("%-8d %16.3f %18.1f\n", n, pnc_ms, h5_ms);
  }
  std::printf("\nPnetCDF's cost is flat and essentially zero (local memory); "
              "the dispersed-\nmetadata design pays per-object file reads and "
              "synchronization, quadratic in\nthe namespace scan.\n");
  return 0;
}

const bench::BenchDef kBench{
    "ablation_header",
    "header caching vs per-object collective opens (nvars sweep)",
    {"lib"},
    Run};

}  // namespace

BENCH_REGISTER(kBench)
