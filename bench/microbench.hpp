// Shared glue for google-benchmark-based micro benches under the bench
// registry. Both micro benches may run inside one ncbench process, where all
// BENCHMARK() registrations share one global registry — each Run() therefore
// selects its own benchmarks with a filter spec, and benchmark::Shutdown()
// is never called mid-process (only Initialize, lazily, per invocation so
// each bench's --benchmark_* flags take effect).
#pragma once

#include <benchmark/benchmark.h>

#include <cstddef>
#include <string>
#include <vector>

#include "bench/bench_common.hpp"

namespace bench {

// Runs the google-benchmark subset matching `filter` (regex over benchmark
// names), honoring any --benchmark_* flags the user passed through. A
// user-supplied --benchmark_filter wins over the registry default.
inline int RunMicro(const Args& args, Recorder& rec, const char* filter) {
  std::vector<std::string> store;
  store.push_back("ncbench");
  bool user_filter = false;
  for (const std::string& a : args.raw()) {
    if (a.rfind("--benchmark_", 0) == 0) {
      store.push_back(a);
      if (a.rfind("--benchmark_filter", 0) == 0) user_filter = true;
    }
  }
  std::vector<char*> argv;
  argv.reserve(store.size());
  for (std::string& s : store) argv.push_back(s.data());
  int argc = static_cast<int>(argv.size());
  benchmark::Initialize(&argc, argv.data());

  rec.BeginConfig();
  const std::size_t ran = user_filter
                              ? benchmark::RunSpecifiedBenchmarks()
                              : benchmark::RunSpecifiedBenchmarks(filter);
  const bool ok = rec.EndConfig(
      bench::JsonObj().Str("suite", "google-benchmark").Str("filter", filter),
      bench::JsonObj().Int("benchmarks_run", ran));
  return ok ? 0 : 2;
}

}  // namespace bench
