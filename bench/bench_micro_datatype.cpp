// Microbenchmarks (google-benchmark): datatype construction/flattening and
// pack/unpack throughput — the CPU-side costs of the flexible API and the
// file-view machinery — plus the per-event cost of the iostat hooks in both
// runtime states (the disabled path must be a load+branch, nothing more).
#include <benchmark/benchmark.h>

#include <vector>

#include "bench/bench_common.hpp"
#include "bench/microbench.hpp"
#include "bench/registry.hpp"
#include "iostat/events.hpp"
#include "simmpi/datatype.hpp"

namespace {

using simmpi::Datatype;

void BM_SubarrayConstruct(benchmark::State& state) {
  const auto n = static_cast<std::uint64_t>(state.range(0));
  const std::uint64_t sizes[] = {n, n, n};
  const std::uint64_t sub[] = {n / 2, n / 2, n / 2};
  const std::uint64_t starts[] = {n / 4, n / 4, n / 4};
  for (auto _ : state) {
    auto t = Datatype::Subarray(sizes, sub, starts, simmpi::DoubleType());
    benchmark::DoNotOptimize(t.value().Flatten().size());
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(n / 2 * (n / 2)));
}
BENCHMARK(BM_SubarrayConstruct)->Arg(16)->Arg(32)->Arg(64)->Arg(128);

void BM_HindexedConstruct(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  std::vector<std::uint64_t> lens(n, 64), offs(n);
  for (std::size_t i = 0; i < n; ++i) offs[i] = i * 128;
  for (auto _ : state) {
    auto t = Datatype::Hindexed(lens, offs, simmpi::ByteType());
    benchmark::DoNotOptimize(t.size());
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(n));
}
BENCHMARK(BM_HindexedConstruct)->Arg(256)->Arg(4096)->Arg(65536);

void BM_PackSubarray(benchmark::State& state) {
  const auto n = static_cast<std::uint64_t>(state.range(0));
  const std::uint64_t sizes[] = {n, n, n};
  const std::uint64_t sub[] = {n - 8, n - 8, n - 8};
  const std::uint64_t starts[] = {4, 4, 4};
  auto t = Datatype::Subarray(sizes, sub, starts, simmpi::DoubleType()).value();
  std::vector<std::byte> base(n * n * n * 8);
  std::vector<std::byte> out(t.size());
  for (auto _ : state) {
    t.Pack(base.data(), 1, out.data());
    benchmark::DoNotOptimize(out.data());
  }
  state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(t.size()));
}
BENCHMARK(BM_PackSubarray)->Arg(16)->Arg(24)->Arg(32);

void BM_UnpackSubarray(benchmark::State& state) {
  const auto n = static_cast<std::uint64_t>(state.range(0));
  const std::uint64_t sizes[] = {n, n, n};
  const std::uint64_t sub[] = {n - 8, n - 8, n - 8};
  const std::uint64_t starts[] = {4, 4, 4};
  auto t = Datatype::Subarray(sizes, sub, starts, simmpi::DoubleType()).value();
  std::vector<std::byte> base(n * n * n * 8);
  std::vector<std::byte> in(t.size());
  for (auto _ : state) {
    t.Unpack(in.data(), 1, base.data());
    benchmark::DoNotOptimize(base.data());
  }
  state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(t.size()));
}
BENCHMARK(BM_UnpackSubarray)->Arg(16)->Arg(24)->Arg(32);

void BM_ContiguousPackIsMemcpySpeed(benchmark::State& state) {
  auto t = Datatype::Contiguous(1 << 20, simmpi::ByteType());
  std::vector<std::byte> base(1 << 20), out(1 << 20);
  for (auto _ : state) {
    t.Pack(base.data(), 1, out.data());
    benchmark::DoNotOptimize(out.data());
  }
  state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations()) << 20);
}
BENCHMARK(BM_ContiguousPackIsMemcpySpeed);

// The iostat hot-path hook itself: Arg(0) measures PNC_IOSTAT_ADD with
// counters disabled at runtime (the zero-overhead claim: one relaxed load
// and a predictable branch), Arg(1) with counters enabled (one relaxed
// fetch_add on a per-rank slot). With PNC_IOSTAT=OFF at configure time both
// compile to nothing.
void BM_IostatCounterAdd(benchmark::State& state) {
#if PNC_IOSTAT_ENABLED
  iostat::Registry::Get().SetCountersEnabled(state.range(0) != 0);
#endif
  for (auto _ : state) {
    PNC_IOSTAT_ADD(kPfsReadOps, 1);
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()));
#if PNC_IOSTAT_ENABLED
  iostat::Registry::Get().SetCountersEnabled(true);
  iostat::Registry::Get().Reset();
#endif
}
BENCHMARK(BM_IostatCounterAdd)->Arg(0)->Arg(1);

// The flight-recorder hot path: Arg(0) measures PNC_IOSTAT_EVENT with the
// recorder disabled at runtime (one relaxed load and a branch), Arg(1) with
// it enabled (one fetch_add claiming a ring slot plus a fixed-size record
// fill — the "~10 ns/event" always-on budget). With PNC_IOSTAT=OFF at
// configure time both compile to nothing.
void BM_FlightRecorderEvent(benchmark::State& state) {
#if PNC_IOSTAT_ENABLED
  PNC_IOSTAT_BIND_RANK(0);
  iostat::FlightRecorder::Get().SetEnabled(state.range(0) != 0);
#endif
  double t = 0.0;
  for (auto _ : state) {
    PNC_IOSTAT_EVENT(kIoBegin, t, 0.0, 64, 1, nullptr);
    t += 1.0;
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()));
#if PNC_IOSTAT_ENABLED
  iostat::FlightRecorder::Get().SetEnabled(true);
  iostat::FlightRecorder::Get().Reset();
#endif
}
BENCHMARK(BM_FlightRecorderEvent)->Arg(0)->Arg(1);

int Run(const bench::Args& args, bench::Recorder& rec) {
  return bench::RunMicro(
      args, rec,
      "BM_SubarrayConstruct|BM_HindexedConstruct|BM_PackSubarray|"
      "BM_UnpackSubarray|BM_ContiguousPackIsMemcpySpeed|BM_IostatCounterAdd|"
      "BM_FlightRecorderEvent");
}

const bench::BenchDef kBench{
    "micro_datatype",
    "datatype construct/flatten/pack throughput and iostat hook cost",
    {"benchmark_*"},
    Run};

}  // namespace

BENCH_REGISTER(kBench)
