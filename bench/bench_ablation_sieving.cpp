// Ablation: data sieving for independent noncontiguous access (§2: "Data
// Sieving and Collective I/O in ROMIO"). A single process reads and writes
// a strided column pattern of varying density with romio_ds_* enabled and
// disabled; sieving turns thousands of small requests into a few large ones
// at the price of transferring unused bytes (and read-modify-write for
// writes).
#include <cstdio>
#include <vector>

#include "bench/bench_common.hpp"
#include "bench/platforms.hpp"
#include "bench/registry.hpp"
#include "pnetcdf/dataset.hpp"
#include "simmpi/runtime.hpp"

namespace {

struct Outcome {
  double ms = 0;
  std::uint64_t requests = 0;
  std::uint64_t bytes = 0;
};

Outcome RunOne(std::uint64_t ncols_selected, bool sieve, bool is_write,
               const bench::Args& args) {
  pfs::Config pcfg = bench::SdscBlueHorizon();
  pcfg.discard_data = true;
  pfs::FileSystem fs(pcfg);
  const std::uint64_t kRows = 2048, kCols = 512;
  Outcome out;

  simmpi::Run(
      1,
      [&](simmpi::Comm& comm) {
        simmpi::Info info;
        info.Set("romio_ds_read", sieve ? "enable" : "disable");
        info.Set("romio_ds_write", sieve ? "enable" : "disable");
        bench::ApplyHintOverrides(args, info);
        auto ds = pnetcdf::Dataset::Create(comm, fs, "s.nc", info).value();
        const int rd = ds.DefDim("row", kRows).value();
        const int cd = ds.DefDim("col", kCols).value();
        const int v =
            ds.DefVar("m", ncformat::NcType::kDouble, {rd, cd}).value();
        (void)ds.EndDef();
        (void)ds.BeginIndepData();

        // Every (kCols / ncols_selected)-th column.
        const std::uint64_t stride_c = kCols / ncols_selected;
        const std::uint64_t start[] = {0, 0};
        const std::uint64_t count[] = {kRows, ncols_selected};
        const std::uint64_t stride[] = {1, stride_c};
        std::vector<double> buf(kRows * ncols_selected, 1.0);

        fs.ResetStats();
        const double t0 = comm.clock().now();
        if (is_write) {
          (void)ds.PutVars<double>(v, start, count, stride, buf);
        } else {
          (void)ds.GetVars<double>(v, start, count, stride, buf);
        }
        out.ms = (comm.clock().now() - t0) / 1e6;
        const auto st = fs.stats();
        out.requests = is_write ? st.write_requests : st.read_requests;
        out.bytes = is_write ? st.bytes_written : st.bytes_read;
        (void)ds.EndIndepData();
        (void)ds.Close();
      },
      bench::Sp2Cost());
  return out;
}

void Chart(bool is_write, bench::Recorder& rec, const bench::Args& args) {
  std::printf("\n--- independent strided %s of m(2048,512) doubles ---\n",
              is_write ? "write" : "read");
  std::printf("%-12s | %12s %10s %12s | %12s %10s %12s | %8s\n",
              "cols selected", "sieved(ms)", "reqs", "bytes", "naive(ms)",
              "reqs", "bytes", "speedup");
  for (std::uint64_t n : {256, 64, 16, 4}) {
    const auto config = [&](const char* ds) {
      return bench::JsonObj()
          .Str("op", is_write ? "write" : "read")
          .Int("cols_selected", n)
          .Str("sieving", ds);
    };
    const auto metrics = [](const Outcome& o) {
      return bench::JsonObj()
          .Num("ms", o.ms)
          .Int("pfs_requests", o.requests)
          .Int("pfs_bytes", o.bytes);
    };
    rec.BeginConfig();
    const Outcome s = RunOne(n, true, is_write, args);
    rec.EndConfig(config("enable"), metrics(s));
    rec.BeginConfig();
    const Outcome d = RunOne(n, false, is_write, args);
    rec.EndConfig(config("disable"), metrics(d));
    std::printf("%-12llu | %12.2f %10llu %12llu | %12.2f %10llu %12llu | %7.1fx\n",
                static_cast<unsigned long long>(n), s.ms,
                static_cast<unsigned long long>(s.requests),
                static_cast<unsigned long long>(s.bytes), d.ms,
                static_cast<unsigned long long>(d.requests),
                static_cast<unsigned long long>(d.bytes),
                s.ms > 0 ? d.ms / s.ms : 0.0);
  }
}

int Run(const bench::Args& args, bench::Recorder& rec) {
  const std::string op = args.Get("op", "all");
  std::printf("Ablation: data sieving (romio_ds_read / romio_ds_write)\n");
  if (op == "read" || op == "all") Chart(/*is_write=*/false, rec, args);
  if (op == "write" || op == "all") Chart(/*is_write=*/true, rec, args);
  std::printf("\nSieving trades extra transferred bytes for far fewer "
              "requests; the naive path\npays one request per noncontiguous "
              "piece.\n");
  return 0;
}

const bench::BenchDef kBench{
    "ablation_sieving",
    "data sieving on/off for single-process strided access",
    {"op"},
    Run};

}  // namespace

BENCH_REGISTER(kBench)
