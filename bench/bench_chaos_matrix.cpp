// Chaos matrix: scripted multi-fault schedules (rank crashes, stragglers,
// message-level drops) crossed with pfs transient faults, run against the
// record-append PnetCDF lifecycle. Unlike the bandwidth benches, the
// numbers recorded here are *invariants of the failure semantics*: the
// agreed status every survivor returns, the survivor count, the ncverify
// classification of the interrupted file, and the deterministic virtual
// completion time. The committed baseline (bench/baselines/chaos.json)
// freezes all of them at zero tolerance, so any change to failure
// agreement, aggregator reassignment, or retry/backoff behavior that
// shifts an outcome trips `ncbench --suite=chaos --check`.
//
// Determinism: cb_nodes=1 keeps file I/O single-writer (see the smoke
// suite note in suites.cpp); crashes are scripted by op index or virtual
// time, drops by send index, and stragglers are pure virtual-cost
// multipliers — nothing depends on thread scheduling.
//
// Usage: chaos_matrix [--procs=4] [--hints=k=v,...]
#include <cstdio>
#include <string>
#include <vector>

#include "bench/bench_common.hpp"
#include "bench/registry.hpp"
#include "pnetcdf/dataset.hpp"
#include "simmpi/runtime.hpp"
#include "tools/verify.hpp"

namespace {

struct Schedule {
  const char* name;
  simmpi::RankFaultPolicy faults;   ///< rank-level faults
  std::uint64_t transient_nth = 0;  ///< pfs: every nth I/O fails once
};

std::vector<Schedule> BuildSchedules() {
  std::vector<Schedule> s;
  s.push_back({"baseline", {}, 0});

  Schedule crash1{"crash_rank1_op20", {}, 0};
  crash1.faults.crashes.push_back({1, 20, -1.0});
  s.push_back(crash1);

  Schedule crash0{"crash_aggregator_late", {}, 0};
  crash0.faults.crashes.push_back({0, simmpi::RankFaultPolicy::kNever, 1e12});
  s.push_back(crash0);

  Schedule strag{"straggler_rank2_x16", {}, 0};
  strag.faults.stragglers.push_back({2, 16.0});
  s.push_back(strag);

  Schedule mixed{"crash_rank1_plus_transients", {}, 3};
  mixed.faults.crashes.push_back({1, 25, -1.0});
  s.push_back(mixed);

  Schedule twofer{"double_crash_ranks1_3", {}, 0};
  twofer.faults.crashes.push_back({1, 15, -1.0});
  twofer.faults.crashes.push_back({3, 17, -1.0});
  s.push_back(twofer);
  return s;
}

struct Outcome {
  int survivors = 0;
  int close_status = 0;  ///< agreed raw status of Close on the survivors
  int status_agree = 1;  ///< 1 iff every survivor returned the same status
  int verify_state = -1;  ///< FileState as int; -1 = no file on disk
  double vtime_us = 0;
  std::uint64_t crashes = 0;
  std::uint64_t straggled = 0;
  std::uint64_t transients = 0;
};

Outcome RunOne(const Schedule& sched, int nprocs, const simmpi::Info& info) {
  pfs::FileSystem fs;
  if (sched.transient_nth != 0) {
    pfs::FaultPolicy p;
    p.transient_every_nth = sched.transient_nth;
    fs.SetFaultPolicy(p);
  }
  std::vector<int> close_status(static_cast<std::size_t>(nprocs), 0);
  const simmpi::RunResult run = simmpi::Run(
      nprocs,
      [&](simmpi::Comm& c) {
        auto r = pnetcdf::Dataset::Create(c, fs, "chaos.nc", info);
        if (!r.ok()) {
          close_status[static_cast<std::size_t>(c.rank())] = r.status().raw();
          return;
        }
        auto ds = std::move(r).value();
        const auto time = ds.DefDim("time", pnetcdf::kUnlimited);
        const auto x = ds.DefDim("x", 8);
        const auto v =
            ds.DefVar("r", ncformat::NcType::kInt, {time.value(), x.value()});
        pnc::Status st = ds.EndDef();
        // Everyone crosses any virtual-time crash deadline here so a timed
        // death lands at the next collective entry, not mid-definition.
        c.clock().AdvanceTo(2e12);
        for (std::uint64_t rec = 0; rec < 2 && st.ok(); ++rec) {
          const std::int32_t base =
              static_cast<std::int32_t>(100 * rec + 10 * c.rank());
          const std::vector<std::int32_t> mine = {base, base + 1};
          const std::uint64_t start[] = {
              rec, static_cast<std::uint64_t>(2 * c.rank())};
          const std::uint64_t count[] = {1, 2};
          st = ds.PutVaraAll<std::int32_t>(v.value(), start, count, mine);
        }
        close_status[static_cast<std::size_t>(c.rank())] = ds.Close().raw();
      },
      simmpi::CostModel{}, sched.faults);

  Outcome out;
  out.survivors = nprocs - static_cast<int>(run.crashed_ranks.size());
  out.vtime_us = run.max_time_ns / 1000.0;
  out.crashes = run.fault_counters.crashes;
  out.straggled = run.fault_counters.straggled_sends;
  out.transients = fs.stats().transient_faults;
  bool first = true;
  for (int r = 0; r < nprocs; ++r) {
    bool dead = false;
    for (int cr : run.crashed_ranks) dead = dead || cr == r;
    if (dead) continue;
    const int st = close_status[static_cast<std::size_t>(r)];
    if (first) {
      out.close_status = st;
      first = false;
    } else if (st != out.close_status) {
      out.status_agree = 0;
    }
  }
  if (fs.Exists("chaos.nc")) {
    auto vr = nctools::VerifyFile(fs, "chaos.nc");
    out.verify_state = vr.ok() ? static_cast<int>(vr.value().state) : -2;
  }
  return out;
}

int Run(const bench::Args& args, bench::Recorder& rec) {
  simmpi::Info info;
  info.Set("cb_nodes", "1");  // single-writer determinism (see suites.cpp)
  bench::ApplyHintOverrides(args, info);
  const int nprocs = bench::ProcsList(args, {4})[0];

  std::printf("Chaos matrix: rank-fault schedules x pfs transients, %d "
              "ranks\n", nprocs);
  std::printf("%-28s | %4s %6s %5s %6s | %7s %6s %5s | %12s\n", "schedule",
              "surv", "close", "agree", "verify", "crashes", "strag",
              "trans", "vtime(us)");
  for (const Schedule& sched : BuildSchedules()) {
    rec.BeginConfig();
    const Outcome o = RunOne(sched, nprocs, info);
    rec.EndConfig(bench::JsonObj()
                      .Str("schedule", sched.name)
                      .Int("nprocs", static_cast<std::uint64_t>(nprocs)),
                  bench::JsonObj()
                      .Int("survivors", static_cast<std::uint64_t>(o.survivors))
                      .Num("close_status", o.close_status)
                      .Int("status_agree",
                           static_cast<std::uint64_t>(o.status_agree))
                      .Num("verify_state", o.verify_state)
                      .Num("vtime_us", o.vtime_us)
                      .Int("crashes", o.crashes)
                      .Int("straggled_sends", o.straggled)
                      .Int("pfs_transients", o.transients));
    std::printf("%-28s | %4d %6d %5d %6d | %7llu %6llu %5llu | %12.1f\n",
                sched.name, o.survivors, o.close_status, o.status_agree,
                o.verify_state, (unsigned long long)o.crashes,
                (unsigned long long)o.straggled,
                (unsigned long long)o.transients, o.vtime_us);
    std::fflush(stdout);
  }
  std::printf("\nclose: agreed survivor status (0 ok, -1005 rank failed); "
              "verify: 0 clean,\n1 torn-recoverable, 2 corrupt, -1 no file. "
              "All columns are deterministic\ninvariants backed by "
              "bench/baselines/chaos.json at zero tolerance.\n");
  return 0;
}

const bench::BenchDef kBench{
    "chaos_matrix",
    "rank-fault schedules x pfs faults: failure-semantics invariants",
    {"procs", "hints"},
    Run};

}  // namespace

BENCH_REGISTER(kBench)
