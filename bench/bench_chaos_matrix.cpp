// Chaos matrix: scripted multi-fault schedules (rank crashes, stragglers,
// message-level drops, bit corruption) crossed with pfs transient faults,
// run against the record-append PnetCDF lifecycle. Unlike the bandwidth
// benches, the numbers recorded here are *invariants of the failure
// semantics*: the agreed status every survivor returns, the survivor count,
// the ncverify classification of the interrupted file, the data-scrub
// verdict against the .ncsum sidecar, and the deterministic virtual
// completion time. The committed baseline (bench/baselines/chaos.json)
// freezes all of them at zero tolerance, so any change to failure
// agreement, aggregator reassignment, retry/backoff, or checksum behavior
// that shifts an outcome trips `ncbench --suite=chaos --check`.
//
// Determinism: cb_nodes=1 keeps file I/O single-writer (see the smoke
// suite note in suites.cpp); crashes are scripted by op index or virtual
// time, drops by send index, stragglers are pure virtual-cost multipliers,
// and every probabilistic corruption draws from a fixed-seed pfs PRNG
// keyed by operation order — nothing depends on thread scheduling.
//
// The bitflip/decay schedules exercise the integrity subsystem end to end:
//   bitflip_writes_p20   flips bits in write payloads during the write run;
//                        the post-run scrub records what the sidecar can
//                        still vouch for.
//   bitflip_readback_p25 writes cleanly, then re-reads through the
//                        verify-on-read path under heavy transient read
//                        flips; `rdst` is the worst per-rank status (0 =
//                        every flip healed, -1006 = surfaced kDataCorrupt —
//                        never a silent wrong answer).
//   decay_at_rest_scrub  writes cleanly, persists one at-rest flip into the
//                        first data byte, and asserts-by-baseline that the
//                        scrub reports it (scrub_corrupt >= 1).
//
// Usage: chaos_matrix [--procs=4] [--hints=k=v,...]
#include <algorithm>
#include <cstdio>
#include <string>
#include <vector>

#include "bench/bench_common.hpp"
#include "bench/registry.hpp"
#include "format/header.hpp"
#include "pnetcdf/dataset.hpp"
#include "simmpi/runtime.hpp"
#include "tools/verify.hpp"

namespace {

constexpr std::uint64_t kFlipSeed = 0xC0FFEE5ull;

struct Schedule {
  const char* name;
  simmpi::RankFaultPolicy faults;    ///< rank-level faults (write phase)
  std::uint64_t transient_nth = 0;   ///< pfs: every nth I/O fails once
  double write_bitflip_prob = 0;     ///< pfs: corrupt write payloads
  double readback_bitflip_prob = 0;  ///< pfs: flips during a read-back phase
  bool decay = false;                ///< persist one at-rest flip, then scrub
};

std::vector<Schedule> BuildSchedules() {
  std::vector<Schedule> s;
  s.push_back({"baseline", {}, 0});

  Schedule crash1{"crash_rank1_op20", {}, 0};
  crash1.faults.crashes.push_back({1, 20, -1.0});
  s.push_back(crash1);

  Schedule crash0{"crash_aggregator_late", {}, 0};
  crash0.faults.crashes.push_back({0, simmpi::RankFaultPolicy::kNever, 1e12});
  s.push_back(crash0);

  Schedule strag{"straggler_rank2_x16", {}, 0};
  strag.faults.stragglers.push_back({2, 16.0});
  s.push_back(strag);

  Schedule mixed{"crash_rank1_plus_transients", {}, 3};
  mixed.faults.crashes.push_back({1, 25, -1.0});
  s.push_back(mixed);

  Schedule twofer{"double_crash_ranks1_3", {}, 0};
  twofer.faults.crashes.push_back({1, 15, -1.0});
  twofer.faults.crashes.push_back({3, 17, -1.0});
  s.push_back(twofer);

  Schedule wflip{"bitflip_writes_p20", {}, 0};
  wflip.write_bitflip_prob = 0.20;
  s.push_back(wflip);

  Schedule rflip{"bitflip_readback_p25", {}, 0};
  rflip.readback_bitflip_prob = 0.25;
  s.push_back(rflip);

  Schedule decay{"decay_at_rest_scrub", {}, 0};
  decay.decay = true;
  s.push_back(decay);
  return s;
}

struct Outcome {
  int survivors = 0;
  int close_status = 0;  ///< agreed raw status of Close on the survivors
  int status_agree = 1;  ///< 1 iff every survivor returned the same status
  int verify_state = -1;  ///< FileState as int; -1 = no file on disk
  double vtime_us = 0;
  std::uint64_t crashes = 0;
  std::uint64_t straggled = 0;
  std::uint64_t transients = 0;
  // ---- integrity columns ----
  int read_status = 0;  ///< worst per-rank raw status of the read-back phase
  std::uint64_t write_flips = 0;  ///< pfs write-payload bitflips injected
  std::uint64_t read_flips = 0;   ///< pfs transient read bitflips injected
  std::uint64_t decay_hits = 0;   ///< persisted at-rest corruptions injected
  int scrub_trusted = -1;         ///< sidecar trusted by the scrub; -1 = n/a
  std::uint64_t scrub_clean = 0;
  std::uint64_t scrub_corrupt = 0;
  std::uint64_t scrub_unsummed = 0;
};

/// First data byte declared by the on-disk header (fault-free harness read).
std::uint64_t DataStart(pfs::FileSystem& fs, const std::string& path) {
  auto f = fs.Open(path);
  if (!f.ok()) return 0;
  std::vector<std::byte> head(64 * 1024);
  f.value().HarnessRead(0, pnc::ByteSpan(head.data(), head.size()), 0.0);
  auto h =
      ncformat::Header::Decode(pnc::ConstByteSpan(head.data(), head.size()));
  if (!h.ok() || h.value().vars.empty()) return 0;
  std::uint64_t begin = h.value().vars[0].begin;
  for (const auto& v : h.value().vars) begin = std::min(begin, v.begin);
  return begin;
}

Outcome RunOne(const Schedule& sched, int nprocs, const simmpi::Info& info) {
  pfs::FileSystem fs;
  if (sched.transient_nth != 0 || sched.write_bitflip_prob > 0) {
    pfs::FaultPolicy p;
    p.seed = kFlipSeed;
    p.transient_every_nth = sched.transient_nth;
    p.bitflip_write_prob = sched.write_bitflip_prob;
    fs.SetFaultPolicy(p);
  }
  std::vector<int> close_status(static_cast<std::size_t>(nprocs), 0);
  const simmpi::RunResult run = simmpi::Run(
      nprocs,
      [&](simmpi::Comm& c) {
        auto r = pnetcdf::Dataset::Create(c, fs, "chaos.nc", info);
        if (!r.ok()) {
          close_status[static_cast<std::size_t>(c.rank())] = r.status().raw();
          return;
        }
        auto ds = std::move(r).value();
        const auto time = ds.DefDim("time", pnetcdf::kUnlimited);
        const auto x = ds.DefDim("x", 8);
        const auto v =
            ds.DefVar("r", ncformat::NcType::kInt, {time.value(), x.value()});
        pnc::Status st = ds.EndDef();
        // Everyone crosses any virtual-time crash deadline here so a timed
        // death lands at the next collective entry, not mid-definition.
        c.clock().AdvanceTo(2e12);
        for (std::uint64_t rec = 0; rec < 2 && st.ok(); ++rec) {
          const std::int32_t base =
              static_cast<std::int32_t>(100 * rec + 10 * c.rank());
          const std::vector<std::int32_t> mine = {base, base + 1};
          const std::uint64_t start[] = {
              rec, static_cast<std::uint64_t>(2 * c.rank())};
          const std::uint64_t count[] = {1, 2};
          st = ds.PutVaraAll<std::int32_t>(v.value(), start, count, mine);
        }
        close_status[static_cast<std::size_t>(c.rank())] = ds.Close().raw();
      },
      simmpi::CostModel{}, sched.faults);

  Outcome out;
  out.survivors = nprocs - static_cast<int>(run.crashed_ranks.size());
  out.vtime_us = run.max_time_ns / 1000.0;
  out.crashes = run.fault_counters.crashes;
  out.straggled = run.fault_counters.straggled_sends;
  out.transients = fs.stats().transient_faults;
  out.write_flips = fs.stats().write_bitflips;
  bool first = true;
  for (int r = 0; r < nprocs; ++r) {
    bool dead = false;
    for (int cr : run.crashed_ranks) dead = dead || cr == r;
    if (dead) continue;
    const int st = close_status[static_cast<std::size_t>(r)];
    if (first) {
      out.close_status = st;
      first = false;
    } else if (st != out.close_status) {
      out.status_agree = 0;
    }
  }

  // Read-back phase: re-open read-only under transient read flips; the
  // verify-on-read path either heals every flip (status 0) or surfaces
  // kDataCorrupt — the baseline freezes which one this seed produces.
  if (sched.readback_bitflip_prob > 0 && fs.Exists("chaos.nc")) {
    pfs::FaultPolicy p;
    p.seed = kFlipSeed + 1;
    p.bitflip_read_prob = sched.readback_bitflip_prob;
    fs.SetFaultPolicy(p);
    std::vector<int> rb(static_cast<std::size_t>(nprocs), 0);
    simmpi::Run(
        nprocs,
        [&](simmpi::Comm& c) {
          auto r = pnetcdf::Dataset::Open(c, fs, "chaos.nc",
                                          /*writable=*/false, info);
          if (!r.ok()) {
            rb[static_cast<std::size_t>(c.rank())] = r.status().raw();
            return;
          }
          auto ds = std::move(r).value();
          pnc::Status st = pnc::Status::Ok();
          const auto vid = ds.VarId("r");
          if (vid.ok()) {
            std::vector<std::int32_t> mine(4);
            const std::uint64_t start[] = {
                0, static_cast<std::uint64_t>(2 * c.rank())};
            const std::uint64_t count[] = {2, 2};
            st = ds.GetVaraAll<std::int32_t>(vid.value(), start, count, mine);
          } else {
            st = vid.status();
          }
          const pnc::Status cl = ds.Close();
          rb[static_cast<std::size_t>(c.rank())] =
              !st.ok() ? st.raw() : cl.raw();
        },
        simmpi::CostModel{}, {});
    for (int r = 0; r < nprocs; ++r)
      out.read_status =
          std::min(out.read_status, rb[static_cast<std::size_t>(r)]);
    out.read_flips = fs.stats().bitflips;
  }

  // Decay phase: persist exactly one at-rest flip into the first data byte
  // (a 1-byte faulted read under corrupt_at_rest=1.0 damages the store),
  // then let the scrub below prove it is found.
  if (sched.decay && fs.Exists("chaos.nc")) {
    fs.SetFaultPolicy({});
    const std::uint64_t target = DataStart(fs, "chaos.nc");
    pfs::FaultPolicy p;
    p.seed = kFlipSeed + 2;
    p.corrupt_at_rest = 1.0;
    fs.SetFaultPolicy(p);
    if (auto f = fs.Open("chaos.nc"); f.ok()) {
      std::byte b{};
      f.value().TryRead(target, pnc::ByteSpan(&b, 1), 0.0);
    }
    out.decay_hits = fs.stats().at_rest_corruptions;
  }

  // Verify + scrub run on a rebooted (fault-free) filesystem so they report
  // what is durably on disk, not fresh transient noise.
  fs.SetFaultPolicy({});
  if (fs.Exists("chaos.nc")) {
    auto vr = nctools::VerifyFile(fs, "chaos.nc", {.data = true});
    out.verify_state = vr.ok() ? static_cast<int>(vr.value().state) : -2;
    if (vr.ok() && vr.value().scrub.has_value()) {
      const ncformat::ScrubReport& sc = *vr.value().scrub;
      out.scrub_trusted = sc.trusted ? 1 : 0;
      out.scrub_clean = sc.clean;
      out.scrub_corrupt = sc.corrupt;
      out.scrub_unsummed = sc.unsummed;
    }
  }
  return out;
}

int Run(const bench::Args& args, bench::Recorder& rec) {
  simmpi::Info info;
  info.Set("cb_nodes", "1");  // single-writer determinism (see suites.cpp)
  bench::ApplyHintOverrides(args, info);
  const int nprocs = bench::ProcsList(args, {4})[0];

  std::printf("Chaos matrix: rank-fault + corruption schedules x pfs "
              "transients, %d ranks\n", nprocs);
  std::printf("%-27s | %4s %6s %5s %6s | %5s %5s %5s | %5s %5s %5s %6s | "
              "%2s %4s %4s %4s | %10s\n",
              "schedule", "surv", "close", "agree", "verify", "crash",
              "strag", "trans", "wflip", "rflip", "decay", "rdst", "tr",
              "cln", "bad", "uns", "vtime(us)");
  for (const Schedule& sched : BuildSchedules()) {
    rec.BeginConfig();
    const Outcome o = RunOne(sched, nprocs, info);
    rec.EndConfig(bench::JsonObj()
                      .Str("schedule", sched.name)
                      .Int("nprocs", static_cast<std::uint64_t>(nprocs)),
                  bench::JsonObj()
                      .Int("survivors", static_cast<std::uint64_t>(o.survivors))
                      .Num("close_status", o.close_status)
                      .Int("status_agree",
                           static_cast<std::uint64_t>(o.status_agree))
                      .Num("verify_state", o.verify_state)
                      .Num("vtime_us", o.vtime_us)
                      .Int("crashes", o.crashes)
                      .Int("straggled_sends", o.straggled)
                      .Int("pfs_transients", o.transients)
                      .Num("read_status", o.read_status)
                      .Int("write_bitflips", o.write_flips)
                      .Int("read_bitflips", o.read_flips)
                      .Int("decay_hits", o.decay_hits)
                      .Num("scrub_trusted", o.scrub_trusted)
                      .Int("scrub_clean", o.scrub_clean)
                      .Int("scrub_corrupt", o.scrub_corrupt)
                      .Int("scrub_unsummed", o.scrub_unsummed));
    std::printf("%-27s | %4d %6d %5d %6d | %5llu %5llu %5llu | %5llu %5llu "
                "%5llu %6d | %2d %4llu %4llu %4llu | %10.1f\n",
                sched.name, o.survivors, o.close_status, o.status_agree,
                o.verify_state, (unsigned long long)o.crashes,
                (unsigned long long)o.straggled,
                (unsigned long long)o.transients,
                (unsigned long long)o.write_flips,
                (unsigned long long)o.read_flips,
                (unsigned long long)o.decay_hits, o.read_status,
                o.scrub_trusted, (unsigned long long)o.scrub_clean,
                (unsigned long long)o.scrub_corrupt,
                (unsigned long long)o.scrub_unsummed, o.vtime_us);
    std::fflush(stdout);
  }
  std::printf("\nclose: agreed survivor status (0 ok, -1005 rank failed); "
              "verify: 0 clean,\n1 torn-recoverable, 2 corrupt, -1 no file. "
              "rdst: worst read-back status\n(0 healed/clean, -1006 "
              "kDataCorrupt surfaced). tr/cln/bad/uns: scrub verdict\n"
              "(sidecar trusted, chunks clean/corrupt/unsummed). All columns "
              "are deterministic\ninvariants backed by "
              "bench/baselines/chaos.json at zero tolerance.\n");
  return 0;
}

const bench::BenchDef kBench{
    "chaos_matrix",
    "rank/corruption fault schedules x pfs faults: failure-semantics "
    "invariants",
    {"procs", "hints"},
    Run};

}  // namespace

BENCH_REGISTER(kBench)
