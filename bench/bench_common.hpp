// Shared helpers for the paper-figure benchmark drivers.
#pragma once

#include <cstdint>
#include <cstdio>
#include <cstring>
#include <string>
#include <vector>

#include "iostat/iostat.hpp"
#include "iostat/report.hpp"
#include "iostat/schemas.hpp"
#include "iostat/trace.hpp"
#include "simmpi/info.hpp"
#include "util/json.hpp"

namespace bench {

/// Tiny --key=value argument parser.
///
/// Flag acceptance is declared, not inferred: every bench lists the keys it
/// understands in its BenchDef (bench/registry.hpp) and the drivers call
/// UnknownFlags() before running, so a typo'd flag (`--proc=8`) is a usage
/// error instead of a silently ignored no-op running the wrong config.
class Args {
 public:
  Args() = default;
  Args(int argc, char** argv) {
    for (int i = 1; i < argc; ++i) args_.emplace_back(argv[i]);
  }
  explicit Args(std::vector<std::string> args) : args_(std::move(args)) {}

  [[nodiscard]] std::string Get(const std::string& key,
                                const std::string& def) const {
    const std::string prefix = "--" + key + "=";
    for (const auto& a : args_)
      if (a.rfind(prefix, 0) == 0) return a.substr(prefix.size());
    return def;
  }
  [[nodiscard]] bool Has(const std::string& flag) const {
    for (const auto& a : args_)
      if (a == "--" + flag) return true;
    return false;
  }

  /// Arguments not covered by `allowed`: anything that is not "--key" or
  /// "--key=value" with `key` in the list. An entry ending in '*' is a
  /// prefix wildcard (e.g. "benchmark_*" admits google-benchmark flags).
  [[nodiscard]] std::vector<std::string> UnknownFlags(
      const std::vector<std::string>& allowed) const {
    std::vector<std::string> unknown;
    for (const auto& a : args_) {
      if (a.rfind("--", 0) != 0) {
        unknown.push_back(a);
        continue;
      }
      const std::string key = a.substr(2, a.find('=') - 2);
      bool ok = false;
      for (const auto& pat : allowed) {
        if (!pat.empty() && pat.back() == '*'
                ? key.rfind(pat.substr(0, pat.size() - 1), 0) == 0
                : key == pat) {
          ok = true;
          break;
        }
      }
      if (!ok) unknown.push_back(a);
    }
    return unknown;
  }

  /// The raw argument strings (for passthrough, e.g. to google-benchmark).
  [[nodiscard]] const std::vector<std::string>& raw() const { return args_; }

 private:
  std::vector<std::string> args_;
};

/// Merge `--hints=key=value[,key=value...]` into `info`. Benches call this
/// after setting their own hints, so a suite- or CLI-level override (e.g.
/// `--hints=cb_nodes=1` for deterministic single-aggregator runs, or a
/// deliberately degraded `cb_buffer_size` to demo the regression gate) wins.
inline void ApplyHintOverrides(const Args& args, simmpi::Info& info) {
  const std::string s = args.Get("hints", "");
  std::size_t pos = 0;
  while (pos < s.size()) {
    std::size_t comma = s.find(',', pos);
    if (comma == std::string::npos) comma = s.size();
    const std::string kv = s.substr(pos, comma - pos);
    const std::size_t eq = kv.find('=');
    if (eq != std::string::npos && eq > 0)
      info.Set(kv.substr(0, eq), kv.substr(eq + 1));
    pos = comma + 1;
  }
}

/// The seven array partitions of Figure 5, encoded as axis bitmasks
/// (bit 0 = Z, bit 1 = Y, bit 2 = X).
struct Partition {
  const char* name;
  unsigned mask;
};
inline constexpr Partition kPartitions[] = {
    {"Z", 1u},  {"Y", 2u},  {"X", 4u},  {"ZY", 3u},
    {"ZX", 5u}, {"YX", 6u}, {"ZYX", 7u},
};

/// Factor `nprocs` across the set axes of `mask` (powers of two), returning
/// per-axis process counts for a 3-D decomposition.
inline void Decompose(int nprocs, unsigned mask, int factors[3]) {
  factors[0] = factors[1] = factors[2] = 1;
  std::vector<int> axes;
  for (int d = 0; d < 3; ++d)
    if (mask & (1u << d)) axes.push_back(d);
  int rem = nprocs;
  std::size_t i = 0;
  while (rem > 1) {
    factors[axes[i % axes.size()]] *= 2;
    rem /= 2;
    ++i;
  }
}

/// Parse a comma-separated process-count list ("1,4,16"); keeps `def` when
/// the flag is absent or yields no positive entries.
inline std::vector<int> ProcsList(const Args& args, std::vector<int> def) {
  const std::string s = args.Get("procs", "");
  if (s.empty()) return def;
  std::vector<int> out;
  std::size_t pos = 0;
  while (pos < s.size()) {
    const int v = std::atoi(s.c_str() + pos);
    if (v > 0) out.push_back(v);
    pos = s.find(',', pos);
    if (pos == std::string::npos) break;
    ++pos;
  }
  return out.empty() ? def : out;
}

/// MB/s from bytes and virtual nanoseconds.
inline double MBps(std::uint64_t bytes, double ns) {
  return ns <= 0 ? 0.0 : static_cast<double>(bytes) / ns * 1e3;
}

/// Tiny JSON-object builder for the config/metrics halves of a bench record.
class JsonObj {
 public:
  JsonObj& Str(const char* key, const std::string& v) {
    return Raw(key, "\"" + pnc::json::Escape(v) + "\"");
  }
  JsonObj& Int(const char* key, std::uint64_t v) {
    return Raw(key, std::to_string(v));
  }
  JsonObj& Num(const char* key, double v) {
    char buf[64];
    std::snprintf(buf, sizeof buf, "%.10g", v);
    return Raw(key, buf);
  }
  [[nodiscard]] std::string str() const { return "{" + body_ + "}"; }

 private:
  JsonObj& Raw(const char* key, const std::string& value) {
    if (!body_.empty()) body_ += ",";
    body_ += "\"";
    body_ += key;
    body_ += "\":";
    body_ += value;
    return *this;
  }
  std::string body_;
};

/// Machine-readable results channel shared by every bench driver: with
/// --json=PATH (or "-" for stdout) each configuration appends one line
///
///   {"schema":"pnc-bench-v1","bench":...,"config":{...},"metrics":{...},
///    "iostat":{..."schema":"pnc-iostat-v1"...}}
///
/// The embedded iostat report is the cross-rank reduction for exactly that
/// configuration (the registry is reset at BeginConfig), so `ncstat --report`
/// can inspect any line of a BENCH_*.json file directly.
///
/// The drivers construct the Recorder and pass it into the bench's Run()
/// entry point; a failed append is sticky (io_failed()) and turned into a
/// nonzero exit by bench::RunBench, so a suite run cannot "succeed" while
/// silently dropping its output.
///
/// With --trace=PATH (any bench; also honored in ncbench suite mode) span
/// recording is switched on and EndConfig rewrites PATH with a Chrome
/// trace-event timeline of the configuration that just finished, so the file
/// holds the most recent configuration of the run.
class Recorder {
 public:
  Recorder(const Args& args, const char* bench_name)
      : bench_(bench_name),
        path_(args.Get("json", "")),
        trace_path_(args.Get("trace", "")) {}
  Recorder(std::string path, std::string bench_name,
           std::string trace_path = "")
      : bench_(std::move(bench_name)),
        path_(std::move(path)),
        trace_path_(std::move(trace_path)) {}

  [[nodiscard]] bool enabled() const { return !path_.empty(); }
  [[nodiscard]] bool tracing() const { return !trace_path_.empty(); }
  [[nodiscard]] bool io_failed() const { return io_failed_; }
  [[nodiscard]] const std::string& path() const { return path_; }

  /// Start a configuration: zero every counter and drop accumulated spans
  /// and events so the emitted report/trace covers only this run.
  void BeginConfig() const {
    if (enabled() || tracing()) iostat::Registry::Get().Reset();
    if (tracing()) iostat::Registry::Get().SetSpansEnabled(true);
  }

  /// Finish a configuration: append its record line and rewrite the trace.
  /// Returns false (and latches io_failed()) when either cannot be written.
  bool EndConfig(const JsonObj& config, const JsonObj& metrics) {
    iostat::Report rep;
    if (enabled() || tracing()) rep = iostat::BuildReport();
    if (enabled()) {
      // `meta` stamps each record with the suite schema this writer targets
      // and the build configuration that produced the numbers, so a trend
      // reader can refuse to compare a sanitizer build against a release
      // one. Readers of pnc-bench-v1 skip unknown keys, so old parsers
      // still accept stamped lines.
      const std::string meta =
          std::string("{\"suite_schema\":\"") + iostat::schemas::kBenchSuite +
          "\",\"iostat\":" + (PNC_IOSTAT_ENABLED ? "true" : "false") +
          ",\"sanitize\":" +
#if defined(PNC_SANITIZE_BUILD)
          "true"
#else
          "false"
#endif
          + std::string("}");
      std::string line =
          std::string("{\"schema\":\"") + iostat::schemas::kBench +
          "\",\"bench\":\"" + bench_ + "\",\"meta\":" + meta +
          ",\"config\":" + config.str() + ",\"metrics\":" + metrics.str() +
          ",\"iostat\":" + iostat::ToJson(rep) + "}\n";
      if (path_ == "-") {
        std::fwrite(line.data(), 1, line.size(), stdout);
        std::fflush(stdout);
      } else {
        FILE* f = std::fopen(path_.c_str(), "a");
        if (f == nullptr) {
          std::fprintf(stderr, "bench: cannot append to %s\n", path_.c_str());
          io_failed_ = true;
          return false;
        }
        const bool wrote =
            std::fwrite(line.data(), 1, line.size(), f) == line.size();
        const bool closed = std::fclose(f) == 0;
        if (!wrote || !closed) {
          std::fprintf(stderr, "bench: short write to %s\n", path_.c_str());
          io_failed_ = true;
          return false;
        }
      }
    }
    if (tracing()) {
      const pnc::Status ts =
          iostat::WriteChromeTrace(trace_path_, &rep.timeline);
      if (!ts.ok()) {
        std::fprintf(stderr, "bench: %s\n", ts.message().c_str());
        io_failed_ = true;
        return false;
      }
    }
    return true;
  }

 private:
  std::string bench_;
  std::string path_;
  std::string trace_path_;
  bool io_failed_ = false;
};

}  // namespace bench
