// Shared helpers for the paper-figure benchmark drivers.
#pragma once

#include <cstdio>
#include <cstring>
#include <string>
#include <vector>

namespace bench {

/// Tiny --key=value argument parser.
class Args {
 public:
  Args(int argc, char** argv) {
    for (int i = 1; i < argc; ++i) args_.emplace_back(argv[i]);
  }

  [[nodiscard]] std::string Get(const std::string& key,
                                const std::string& def) const {
    const std::string prefix = "--" + key + "=";
    for (const auto& a : args_)
      if (a.rfind(prefix, 0) == 0) return a.substr(prefix.size());
    return def;
  }
  [[nodiscard]] bool Has(const std::string& flag) const {
    for (const auto& a : args_)
      if (a == "--" + flag) return true;
    return false;
  }

 private:
  std::vector<std::string> args_;
};

/// The seven array partitions of Figure 5, encoded as axis bitmasks
/// (bit 0 = Z, bit 1 = Y, bit 2 = X).
struct Partition {
  const char* name;
  unsigned mask;
};
inline constexpr Partition kPartitions[] = {
    {"Z", 1u},  {"Y", 2u},  {"X", 4u},  {"ZY", 3u},
    {"ZX", 5u}, {"YX", 6u}, {"ZYX", 7u},
};

/// Factor `nprocs` across the set axes of `mask` (powers of two), returning
/// per-axis process counts for a 3-D decomposition.
inline void Decompose(int nprocs, unsigned mask, int factors[3]) {
  factors[0] = factors[1] = factors[2] = 1;
  std::vector<int> axes;
  for (int d = 0; d < 3; ++d)
    if (mask & (1u << d)) axes.push_back(d);
  int rem = nprocs;
  std::size_t i = 0;
  while (rem > 1) {
    factors[axes[i % axes.size()]] *= 2;
    rem /= 2;
    ++i;
  }
}

/// MB/s from bytes and virtual nanoseconds.
inline double MBps(std::uint64_t bytes, double ns) {
  return ns <= 0 ? 0.0 : static_cast<double>(bytes) / ns * 1e3;
}

}  // namespace bench
