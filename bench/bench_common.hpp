// Shared helpers for the paper-figure benchmark drivers.
#pragma once

#include <cstdint>
#include <cstdio>
#include <cstring>
#include <string>
#include <vector>

#include "iostat/iostat.hpp"
#include "iostat/report.hpp"

namespace bench {

/// Tiny --key=value argument parser.
class Args {
 public:
  Args(int argc, char** argv) {
    for (int i = 1; i < argc; ++i) args_.emplace_back(argv[i]);
  }

  [[nodiscard]] std::string Get(const std::string& key,
                                const std::string& def) const {
    const std::string prefix = "--" + key + "=";
    for (const auto& a : args_)
      if (a.rfind(prefix, 0) == 0) return a.substr(prefix.size());
    return def;
  }
  [[nodiscard]] bool Has(const std::string& flag) const {
    for (const auto& a : args_)
      if (a == "--" + flag) return true;
    return false;
  }

 private:
  std::vector<std::string> args_;
};

/// The seven array partitions of Figure 5, encoded as axis bitmasks
/// (bit 0 = Z, bit 1 = Y, bit 2 = X).
struct Partition {
  const char* name;
  unsigned mask;
};
inline constexpr Partition kPartitions[] = {
    {"Z", 1u},  {"Y", 2u},  {"X", 4u},  {"ZY", 3u},
    {"ZX", 5u}, {"YX", 6u}, {"ZYX", 7u},
};

/// Factor `nprocs` across the set axes of `mask` (powers of two), returning
/// per-axis process counts for a 3-D decomposition.
inline void Decompose(int nprocs, unsigned mask, int factors[3]) {
  factors[0] = factors[1] = factors[2] = 1;
  std::vector<int> axes;
  for (int d = 0; d < 3; ++d)
    if (mask & (1u << d)) axes.push_back(d);
  int rem = nprocs;
  std::size_t i = 0;
  while (rem > 1) {
    factors[axes[i % axes.size()]] *= 2;
    rem /= 2;
    ++i;
  }
}

/// MB/s from bytes and virtual nanoseconds.
inline double MBps(std::uint64_t bytes, double ns) {
  return ns <= 0 ? 0.0 : static_cast<double>(bytes) / ns * 1e3;
}

/// Tiny JSON-object builder for the config/metrics halves of a bench record.
class JsonObj {
 public:
  JsonObj& Str(const char* key, const std::string& v) {
    std::string esc;
    for (char c : v) {
      if (c == '"' || c == '\\') esc.push_back('\\');
      esc.push_back(c);
    }
    return Raw(key, "\"" + esc + "\"");
  }
  JsonObj& Int(const char* key, std::uint64_t v) {
    return Raw(key, std::to_string(v));
  }
  JsonObj& Num(const char* key, double v) {
    char buf[64];
    std::snprintf(buf, sizeof buf, "%.10g", v);
    return Raw(key, buf);
  }
  [[nodiscard]] std::string str() const { return "{" + body_ + "}"; }

 private:
  JsonObj& Raw(const char* key, const std::string& value) {
    if (!body_.empty()) body_ += ",";
    body_ += "\"";
    body_ += key;
    body_ += "\":";
    body_ += value;
    return *this;
  }
  std::string body_;
};

/// Machine-readable results channel shared by every bench driver: with
/// --json=PATH (or "-" for stdout) each configuration appends one line
///
///   {"schema":"pnc-bench-v1","bench":...,"config":{...},"metrics":{...},
///    "iostat":{..."schema":"pnc-iostat-v1"...}}
///
/// The embedded iostat report is the cross-rank reduction for exactly that
/// configuration (the registry is reset at BeginConfig), so `ncstat --report`
/// can inspect any line of a BENCH_*.json file directly.
class Recorder {
 public:
  Recorder(const Args& args, const char* bench_name)
      : bench_(bench_name), path_(args.Get("json", "")) {}

  [[nodiscard]] bool enabled() const { return !path_.empty(); }

  /// Start a configuration: zero every counter and drop accumulated spans so
  /// the emitted report covers only this run.
  void BeginConfig() const {
    if (enabled()) iostat::Registry::Get().Reset();
  }

  /// Finish a configuration: append its record line.
  void EndConfig(const JsonObj& config, const JsonObj& metrics) const {
    if (!enabled()) return;
    std::string line = "{\"schema\":\"pnc-bench-v1\",\"bench\":\"" + bench_ +
                       "\",\"config\":" + config.str() +
                       ",\"metrics\":" + metrics.str() +
                       ",\"iostat\":" + iostat::ToJson(iostat::BuildReport()) +
                       "}\n";
    if (path_ == "-") {
      std::fwrite(line.data(), 1, line.size(), stdout);
      std::fflush(stdout);
      return;
    }
    if (FILE* f = std::fopen(path_.c_str(), "a")) {
      std::fwrite(line.data(), 1, line.size(), f);
      std::fclose(f);
    } else {
      std::fprintf(stderr, "bench: cannot append to %s\n", path_.c_str());
    }
  }

 private:
  std::string bench_;
  std::string path_;
};

}  // namespace bench
