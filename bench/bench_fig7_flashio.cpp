// Figure 7 reproduction: the FLASH I/O benchmark, PnetCDF vs parallel HDF5
// (here: the hdf5lite baseline), on an ASCI White Frost-like platform with a
// 2-node I/O system.
//
// Six charts: {checkpoint, plotfile, plotfile w/ corners} x {8^3, 16^3}
// blocks, aggregate write bandwidth vs number of processors. Each process
// holds 80 AMR blocks; checkpoints write 24 double-precision unknowns plus
// tree metadata (~8 MB/proc at 8^3, ~60 MB/proc at 16^3), plotfiles write 4
// single-precision variables (~1 MB and ~6 MB/proc).
//
// Usage: bench_fig7_flashio [--file=checkpoint|plotfile|corners|all]
//                           [--block=8|16|all] [--procs=4,8,16,32,64]
//                           [--lib=pnetcdf|hdf5lite|both] [--quick]
//                           [--hints=k=v,...] [--json=BENCH_fig7.json]
//                           [--trace=flash.trace.json]
//
// --trace (a driver-level bench::Recorder flag, available on every bench)
// writes a Chrome trace-event timeline (chrome://tracing / Perfetto) of the
// most recent configuration.
#include <cstdio>
#include <string>

#include "bench/bench_common.hpp"
#include "bench/platforms.hpp"
#include "bench/registry.hpp"
#include "flash/flash.hpp"
#include "simmpi/runtime.hpp"

namespace {

using bench::Args;
using bench::MBps;
using flashio::FileKind;
using flashio::FlashConfig;
using flashio::FlashData;

double RunOne(const FlashConfig& cfg, FileKind kind, int nprocs,
              bool use_pnetcdf, const simmpi::Info& info) {
  pfs::Config pcfg = bench::AsciFrost();
  pcfg.discard_data = true;
  pfs::FileSystem fs(pcfg);
  const std::uint64_t total_bytes =
      flashio::BytesPerProc(cfg, kind) * static_cast<std::uint64_t>(nprocs);
  double bw = 0.0;

  simmpi::Run(
      nprocs,
      [&](simmpi::Comm& comm) {
        FlashData data(cfg, comm.rank());
        comm.SyncClocksToMax();
        const double t0 = comm.clock().now();
        pnc::Status st =
            use_pnetcdf
                ? flashio::WriteFlashPnetcdf(comm, fs, "flash.out", data, kind,
                                             info)
                : flashio::WriteFlashHdf5lite(comm, fs, "flash.out", data,
                                              kind, info);
        if (!st.ok()) {
          if (comm.rank() == 0)
            std::fprintf(stderr, "write failed: %s\n", st.message().c_str());
          return;
        }
        comm.SyncClocksToMax();
        if (comm.rank() == 0) bw = MBps(total_bytes, comm.clock().now() - t0);
      },
      bench::Sp2Cost());
  return bw;
}

const char* KindName(FileKind k) {
  switch (k) {
    case FileKind::kCheckpoint: return "Checkpoint";
    case FileKind::kPlotfile: return "Plotfiles";
    case FileKind::kPlotfileCorners: return "Plotfiles w/corners";
  }
  return "?";
}

void RunChart(FileKind kind, int block, const std::vector<int>& procs,
              bench::Recorder& rec, bool run_pnetcdf, bool run_hdf5lite,
              const simmpi::Info& info) {
  FlashConfig cfg;
  cfg.nxb = cfg.nyb = cfg.nzb = block;
  std::printf("\n=== Figure 7: Flash I/O Benchmark (%s, %dx%dx%d) ===\n",
              KindName(kind), block, block, block);
  std::printf("(aggregate write bandwidth, MB/s; %d blocks/proc, %.1f "
              "MB/proc)\n",
              cfg.blocks_per_proc,
              static_cast<double>(flashio::BytesPerProc(cfg, kind)) /
                  (1 << 20));
  std::printf("%-8s %12s %12s %8s\n", "nprocs", "PnetCDF", "HDF5(lite)",
              "ratio");
  const auto config = [&](int np, const char* lib) {
    return bench::JsonObj()
        .Str("file", KindName(kind))
        .Int("block", static_cast<std::uint64_t>(block))
        .Int("nprocs", static_cast<std::uint64_t>(np))
        .Str("lib", lib);
  };
  for (int np : procs) {
    double pnc_bw = 0.0, h5_bw = 0.0;
    if (run_pnetcdf) {
      rec.BeginConfig();
      pnc_bw = RunOne(cfg, kind, np, /*use_pnetcdf=*/true, info);
      rec.EndConfig(config(np, "pnetcdf"), bench::JsonObj().Num("mbps", pnc_bw));
    }
    if (run_hdf5lite) {
      rec.BeginConfig();
      h5_bw = RunOne(cfg, kind, np, /*use_pnetcdf=*/false, info);
      rec.EndConfig(config(np, "hdf5lite"), bench::JsonObj().Num("mbps", h5_bw));
    }
    std::printf("%-8d %12.1f %12.1f %7.2fx\n", np, pnc_bw, h5_bw,
                h5_bw > 0 ? pnc_bw / h5_bw : 0.0);
    std::fflush(stdout);
  }
}

int Run(const Args& args, bench::Recorder& rec) {
  const std::string file = args.Get("file", "all");
  const std::string block = args.Get("block", "all");
  const std::string lib = args.Get("lib", "both");
  const bool quick = args.Has("quick");
  simmpi::Info info;
  bench::ApplyHintOverrides(args, info);

  // The paper sweeps 16..512 processes on 1024-way hardware; the default
  // here stops at 64 thread-backed ranks to keep host memory and wall time
  // in check (--procs extends it; the virtual-time model is the same).
  const std::vector<int> procs = bench::ProcsList(
      args, quick ? std::vector<int>{4, 16}
                  : std::vector<int>{4, 8, 16, 32, 64});

  std::printf("PnetCDF reproduction - Figure 7 FLASH I/O benchmark\n");
  std::printf("Platform: ASCI White Frost-like (2-node GPFS I/O system)\n");

  std::vector<FileKind> kinds;
  if (file == "checkpoint" || file == "all")
    kinds.push_back(FileKind::kCheckpoint);
  if (file == "plotfile" || file == "all") kinds.push_back(FileKind::kPlotfile);
  if (file == "corners" || file == "all")
    kinds.push_back(FileKind::kPlotfileCorners);
  std::vector<int> blocks;
  if (block == "8" || block == "all") blocks.push_back(8);
  if (block == "16" || block == "all") blocks.push_back(16);

  for (int b : blocks)
    for (auto k : kinds) {
      // 16^3 checkpoints are ~60 MB/proc; cap the sweep to bound host RAM.
      std::vector<int> p = procs;
      if (b == 16 && k == FileKind::kCheckpoint && !args.Has("procs")) {
        while (!p.empty() && p.back() > 32) p.pop_back();
      }
      RunChart(k, b, p, rec, lib != "hdf5lite", lib != "pnetcdf", info);
    }
  return 0;
}

const bench::BenchDef kBench{
    "fig7_flashio",
    "Figure 7: FLASH I/O checkpoint/plotfile writes, PnetCDF vs hdf5lite",
    {"file", "block", "procs", "lib", "quick"},
    Run};

}  // namespace

BENCH_REGISTER(kBench)
