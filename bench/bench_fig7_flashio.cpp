// Figure 7 reproduction: the FLASH I/O benchmark, PnetCDF vs parallel HDF5
// (here: the hdf5lite baseline), on an ASCI White Frost-like platform with a
// 2-node I/O system.
//
// Six charts: {checkpoint, plotfile, plotfile w/ corners} x {8^3, 16^3}
// blocks, aggregate write bandwidth vs number of processors. Each process
// holds 80 AMR blocks; checkpoints write 24 double-precision unknowns plus
// tree metadata (~8 MB/proc at 8^3, ~60 MB/proc at 16^3), plotfiles write 4
// single-precision variables (~1 MB and ~6 MB/proc).
//
// Usage: bench_fig7_flashio [--file=checkpoint|plotfile|corners|all]
//                           [--block=8|16|all] [--procs=4,8,16,32,64]
//                           [--quick] [--json=BENCH_fig7.json]
//                           [--trace=flash.trace.json]
//
// --trace enables span recording and writes a Chrome trace-event timeline
// (chrome://tracing / Perfetto) of the most recent PnetCDF configuration.
#include <cstdio>
#include <string>

#include "bench/bench_common.hpp"
#include "bench/platforms.hpp"
#include "flash/flash.hpp"
#include "iostat/trace.hpp"
#include "simmpi/runtime.hpp"

namespace {

using bench::Args;
using bench::MBps;
using flashio::FileKind;
using flashio::FlashConfig;
using flashio::FlashData;

double RunOne(const FlashConfig& cfg, FileKind kind, int nprocs,
              bool use_pnetcdf) {
  pfs::Config pcfg = bench::AsciFrost();
  pcfg.discard_data = true;
  pfs::FileSystem fs(pcfg);
  const std::uint64_t total_bytes =
      flashio::BytesPerProc(cfg, kind) * static_cast<std::uint64_t>(nprocs);
  double bw = 0.0;

  simmpi::Run(
      nprocs,
      [&](simmpi::Comm& comm) {
        FlashData data(cfg, comm.rank());
        comm.SyncClocksToMax();
        const double t0 = comm.clock().now();
        pnc::Status st =
            use_pnetcdf
                ? flashio::WriteFlashPnetcdf(comm, fs, "flash.out", data, kind,
                                             simmpi::NullInfo())
                : flashio::WriteFlashHdf5lite(comm, fs, "flash.out", data,
                                              kind, simmpi::NullInfo());
        if (!st.ok()) {
          if (comm.rank() == 0)
            std::fprintf(stderr, "write failed: %s\n", st.message().c_str());
          return;
        }
        comm.SyncClocksToMax();
        if (comm.rank() == 0) bw = MBps(total_bytes, comm.clock().now() - t0);
      },
      bench::Sp2Cost());
  return bw;
}

const char* KindName(FileKind k) {
  switch (k) {
    case FileKind::kCheckpoint: return "Checkpoint";
    case FileKind::kPlotfile: return "Plotfiles";
    case FileKind::kPlotfileCorners: return "Plotfiles w/corners";
  }
  return "?";
}

void RunChart(FileKind kind, int block, const std::vector<int>& procs,
              const bench::Recorder& rec, const std::string& trace) {
  FlashConfig cfg;
  cfg.nxb = cfg.nyb = cfg.nzb = block;
  std::printf("\n=== Figure 7: Flash I/O Benchmark (%s, %dx%dx%d) ===\n",
              KindName(kind), block, block, block);
  std::printf("(aggregate write bandwidth, MB/s; %d blocks/proc, %.1f "
              "MB/proc)\n",
              cfg.blocks_per_proc,
              static_cast<double>(flashio::BytesPerProc(cfg, kind)) /
                  (1 << 20));
  std::printf("%-8s %12s %12s %8s\n", "nprocs", "PnetCDF", "HDF5(lite)",
              "ratio");
  const auto config = [&](int np, const char* lib) {
    return bench::JsonObj()
        .Str("file", KindName(kind))
        .Int("block", static_cast<std::uint64_t>(block))
        .Int("nprocs", static_cast<std::uint64_t>(np))
        .Str("lib", lib);
  };
  for (int np : procs) {
    rec.BeginConfig();
    if (!trace.empty()) iostat::Registry::Get().Reset();
    const double pnc_bw = RunOne(cfg, kind, np, /*use_pnetcdf=*/true);
    if (!trace.empty()) (void)iostat::WriteChromeTrace(trace);
    rec.EndConfig(config(np, "pnetcdf"), bench::JsonObj().Num("mbps", pnc_bw));
    rec.BeginConfig();
    const double h5_bw = RunOne(cfg, kind, np, /*use_pnetcdf=*/false);
    rec.EndConfig(config(np, "hdf5lite"), bench::JsonObj().Num("mbps", h5_bw));
    std::printf("%-8d %12.1f %12.1f %7.2fx\n", np, pnc_bw, h5_bw,
                h5_bw > 0 ? pnc_bw / h5_bw : 0.0);
    std::fflush(stdout);
  }
}

}  // namespace

int main(int argc, char** argv) {
  Args args(argc, argv);
  const std::string file = args.Get("file", "all");
  const std::string block = args.Get("block", "all");
  const bool quick = args.Has("quick");

  // The paper sweeps 16..512 processes on 1024-way hardware; the default
  // here stops at 64 thread-backed ranks to keep host memory and wall time
  // in check (--procs extends it; the virtual-time model is the same).
  std::vector<int> procs = quick ? std::vector<int>{4, 16}
                                 : std::vector<int>{4, 8, 16, 32, 64};
  {
    const std::string s = args.Get("procs", "");
    if (!s.empty()) {
      procs.clear();
      std::size_t pos = 0;
      while (pos < s.size()) {
        procs.push_back(std::atoi(s.c_str() + pos));
        pos = s.find(',', pos);
        if (pos == std::string::npos) break;
        ++pos;
      }
    }
  }

  std::printf("PnetCDF reproduction - Figure 7 FLASH I/O benchmark\n");
  std::printf("Platform: ASCI White Frost-like (2-node GPFS I/O system)\n");

  const bench::Recorder rec(args, "fig7_flashio");
  const std::string trace = args.Get("trace", "");
  if (!trace.empty()) iostat::Registry::Get().SetSpansEnabled(true);

  std::vector<FileKind> kinds;
  if (file == "checkpoint" || file == "all")
    kinds.push_back(FileKind::kCheckpoint);
  if (file == "plotfile" || file == "all") kinds.push_back(FileKind::kPlotfile);
  if (file == "corners" || file == "all")
    kinds.push_back(FileKind::kPlotfileCorners);
  std::vector<int> blocks;
  if (block == "8" || block == "all") blocks.push_back(8);
  if (block == "16" || block == "all") blocks.push_back(16);

  for (int b : blocks)
    for (auto k : kinds) {
      // 16^3 checkpoints are ~60 MB/proc; cap the sweep to bound host RAM.
      std::vector<int> p = procs;
      if (b == 16 && k == FileKind::kCheckpoint && !args.Has("procs")) {
        while (!p.empty() && p.back() > 32) p.pop_back();
      }
      RunChart(k, b, p, rec, trace);
    }
  return 0;
}
