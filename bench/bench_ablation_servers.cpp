// Ablation: I/O server pool size. Figure 6 ran against 12 GPFS I/O nodes,
// Figure 7 against 2 — the paper notes bandwidth "does not scale in direct
// proportion because the number of I/O nodes (and disks) is fixed". Here the
// same collective write sweeps the server count, showing where the
// saturation ceiling comes from.
#include <cstdio>
#include <vector>

#include "bench/bench_common.hpp"
#include "bench/platforms.hpp"
#include "bench/registry.hpp"
#include "pnetcdf/dataset.hpp"
#include "simmpi/runtime.hpp"

namespace {

double RunOne(int num_servers, int nprocs, const simmpi::Info& info) {
  pfs::Config pcfg = bench::SdscBlueHorizon();
  pcfg.num_servers = num_servers;
  pcfg.discard_data = true;
  pfs::FileSystem fs(pcfg);
  const std::uint64_t kZ = 256, kY = 128, kX = 64;
  double bw = 0.0;

  simmpi::Run(
      nprocs,
      [&](simmpi::Comm& comm) {
        auto ds = pnetcdf::Dataset::Create(comm, fs, "srv.nc", info).value();
        const int zd = ds.DefDim("z", kZ).value();
        const int yd = ds.DefDim("y", kY).value();
        const int xd = ds.DefDim("x", kX).value();
        const int v =
            ds.DefVar("u", ncformat::NcType::kDouble, {zd, yd, xd}).value();
        (void)ds.EndDef();
        const std::uint64_t zper = kZ / static_cast<std::uint64_t>(nprocs);
        const std::uint64_t start[] = {
            zper * static_cast<std::uint64_t>(comm.rank()), 0, 0};
        const std::uint64_t count[] = {zper, kY, kX};
        std::vector<double> mine(zper * kY * kX, 1.0);
        comm.SyncClocksToMax();
        const double t0 = comm.clock().now();
        (void)ds.PutVaraAll<double>(v, start, count, mine);
        comm.SyncClocksToMax();
        if (comm.rank() == 0)
          bw = bench::MBps(kZ * kY * kX * 8, comm.clock().now() - t0);
        (void)ds.Close();
      },
      bench::Sp2Cost());
  return bw;
}

int Run(const bench::Args& args, bench::Recorder& rec) {
  simmpi::Info info;
  bench::ApplyHintOverrides(args, info);
  std::printf("Ablation: number of I/O servers (the Fig.6 vs Fig.7 platform "
              "difference)\n");
  std::printf("Z-partitioned 16 MB collective write, MB/s\n\n");
  std::printf("%-10s", "nprocs");
  for (int s : {1, 2, 4, 8, 12, 24}) std::printf(" %8dsrv", s);
  std::printf("\n");
  for (int np : bench::ProcsList(args, {1, 4, 16})) {
    std::printf("%-10d", np);
    for (int s : {1, 2, 4, 8, 12, 24}) {
      rec.BeginConfig();
      const double bw = RunOne(s, np, info);
      rec.EndConfig(bench::JsonObj()
                        .Int("nprocs", static_cast<std::uint64_t>(np))
                        .Int("num_servers", static_cast<std::uint64_t>(s)),
                    bench::JsonObj().Num("mbps", bw));
      std::printf(" %11.1f", bw);
    }
    std::printf("\n");
  }
  std::printf("\nAt low server counts extra clients cannot help (the pool is "
              "the ceiling);\nmore servers raise the ceiling until client "
              "links bind.\n");
  return 0;
}

const bench::BenchDef kBench{
    "ablation_servers",
    "I/O-server pool sweep: where the saturation ceiling comes from",
    {"procs"},
    Run};

}  // namespace

BENCH_REGISTER(kBench)
