// Ablation: nonblocking request aggregation over record variables.
//
// Paper §4.2.2: "In some cases (for instance, in record variable access) the
// data is stored interleaved by record, and the contiguity information is
// lost ... we can collect multiple I/O requests over a number of record
// variables and optimize the file I/O over a large pool of data transfers,
// thereby producing more contiguous and larger transfers."
//
// Writing one record of NVAR record variables: per-variable collectives see
// only their own (record-interleaved, noncontiguous) slices; iput + wait_all
// merges them into whole-record contiguous spans.
#include <cstdio>
#include <vector>

#include "bench/bench_common.hpp"
#include "bench/platforms.hpp"
#include "bench/registry.hpp"
#include "pnetcdf/nonblocking.hpp"
#include "simmpi/runtime.hpp"

namespace {

struct Outcome {
  double ms = 0;
  std::uint64_t requests = 0;
};

Outcome RunOne(int nvars, bool aggregated, const simmpi::Info& info) {
  pfs::Config pcfg = bench::SdscBlueHorizon();
  pcfg.discard_data = true;
  pfs::FileSystem fs(pcfg);
  const int nprocs = 8;
  const std::uint64_t kX = 64 * 1024;  // 512 KB per variable per record
  Outcome out;

  simmpi::Run(
      nprocs,
      [&](simmpi::Comm& comm) {
        auto ds = pnetcdf::Dataset::Create(comm, fs, "nb.nc", info).value();
        const int t = ds.DefDim("time", pnetcdf::kUnlimited).value();
        const int x = ds.DefDim("x", kX).value();
        std::vector<int> vars;
        for (int v = 0; v < nvars; ++v)
          vars.push_back(ds.DefVar("r" + std::to_string(v),
                                   ncformat::NcType::kDouble, {t, x})
                             .value());
        (void)ds.EndDef();
        fs.ResetStats();

        const std::uint64_t xper = kX / static_cast<std::uint64_t>(nprocs);
        const std::uint64_t start[] = {
            0, xper * static_cast<std::uint64_t>(comm.rank())};
        const std::uint64_t count[] = {1, xper};
        std::vector<std::vector<double>> bufs(
            static_cast<std::size_t>(nvars),
            std::vector<double>(xper, 1.0));

        comm.SyncClocksToMax();
        const double t0 = comm.clock().now();
        if (aggregated) {
          pnetcdf::NonblockingQueue q(ds);
          for (int v = 0; v < nvars; ++v)
            (void)q.IputVara<double>(vars[static_cast<std::size_t>(v)], start,
                                     count, bufs[static_cast<std::size_t>(v)]);
          (void)q.WaitAll();
        } else {
          for (int v = 0; v < nvars; ++v)
            (void)ds.PutVaraAll<double>(vars[static_cast<std::size_t>(v)],
                                        start, count,
                                        bufs[static_cast<std::size_t>(v)]);
        }
        comm.SyncClocksToMax();
        if (comm.rank() == 0) out.ms = (comm.clock().now() - t0) / 1e6;
        (void)ds.Close();
      },
      bench::Sp2Cost());
  out.requests = fs.stats().write_requests;
  return out;
}

int Run(const bench::Args& args, bench::Recorder& rec) {
  simmpi::Info info;
  bench::ApplyHintOverrides(args, info);
  std::printf("Ablation: nonblocking aggregation across record variables\n");
  std::printf("one record of N record variables (512 KB each), 8 procs\n\n");
  std::printf("%-8s | %14s %10s | %14s %10s | %8s\n", "nvars",
              "iput+waitall", "requests", "per-var colls", "requests",
              "speedup");
  for (int n : {2, 8, 24, 64}) {
    const auto config = [n](const char* mode) {
      return bench::JsonObj()
          .Int("nvars", static_cast<std::uint64_t>(n))
          .Str("mode", mode);
    };
    const auto metrics = [](const Outcome& o) {
      return bench::JsonObj().Num("ms", o.ms).Int("pfs_write_requests",
                                                  o.requests);
    };
    rec.BeginConfig();
    const Outcome agg = RunOne(n, true, info);
    rec.EndConfig(config("iput_waitall"), metrics(agg));
    rec.BeginConfig();
    const Outcome sep = RunOne(n, false, info);
    rec.EndConfig(config("per_var_collective"), metrics(sep));
    std::printf("%-8d | %14.2f %10llu | %14.2f %10llu | %7.2fx\n", n, agg.ms,
                static_cast<unsigned long long>(agg.requests), sep.ms,
                static_cast<unsigned long long>(sep.requests),
                agg.ms > 0 ? sep.ms / agg.ms : 0.0);
  }
  std::printf("\nAggregation recovers record-level contiguity that "
              "per-variable collectives\nlose to the interleaved record "
              "layout (Figure 1).\n");
  return 0;
}

const bench::BenchDef kBench{
    "ablation_nonblocking",
    "iput/wait_all aggregation vs per-variable collectives over records",
    {},
    Run};

}  // namespace

BENCH_REGISTER(kBench)
