// Future-work reproduction (paper §6): "In particular we are interested in
// seeing how read performance compares between PnetCDF and HDF5; perhaps
// without the additional synchronization of writes the performance is more
// comparable."
//
// This bench answers that question in the reproduction: a FLASH checkpoint
// written by each library is read back by the same library (a restart), and
// the aggregate read bandwidth is compared next to the write bandwidth. The
// hypothesis holds if the PnetCDF/HDF5 ratio on reads is smaller than on
// writes (reads skip the write-time metadata synchronization, though
// per-object collective opens and hyperslab packing remain).
//
// Usage: future_readback [--block=8|16] [--procs=4,8,16,32]
#include <cstdio>

#include "bench/bench_common.hpp"
#include "bench/platforms.hpp"
#include "bench/registry.hpp"
#include "flash/flash.hpp"
#include "simmpi/runtime.hpp"

namespace {

using bench::MBps;
using flashio::FileKind;
using flashio::FlashConfig;
using flashio::FlashData;

struct Rates {
  double write_bw = 0;
  double read_bw = 0;
};

Rates RunOne(const FlashConfig& cfg, int nprocs, bool use_pnetcdf,
             const simmpi::Info& info) {
  // Reads must parse real headers, so the file is actually materialized
  // here (unlike the write-only sweeps).
  pfs::Config pcfg = bench::AsciFrost();
  pfs::FileSystem fs(pcfg);
  const std::uint64_t data_bytes =
      static_cast<std::uint64_t>(cfg.nvar) *
      static_cast<std::uint64_t>(cfg.blocks_per_proc) *
      cfg.block_interior_elems() * 8 * static_cast<std::uint64_t>(nprocs);
  Rates out;

  simmpi::Run(
      nprocs,
      [&](simmpi::Comm& comm) {
        FlashData data(cfg, comm.rank());
        comm.SyncClocksToMax();
        const double t0 = comm.clock().now();
        pnc::Status st =
            use_pnetcdf
                ? flashio::WriteFlashPnetcdf(comm, fs, "chk", data,
                                             FileKind::kCheckpoint, info)
                : flashio::WriteFlashHdf5lite(comm, fs, "chk", data,
                                              FileKind::kCheckpoint, info);
        if (!st.ok()) return;
        comm.SyncClocksToMax();
        const double t1 = comm.clock().now();

        // ---- restart read of every unknown ----
        if (use_pnetcdf) {
          auto ds =
              pnetcdf::Dataset::Open(comm, fs, "chk", false, info).value();
          std::vector<double> guarded;
          for (int v = 0; v < cfg.nvar; ++v)
            (void)flashio::RestartReadUnk(comm, ds, cfg, v, guarded);
          (void)ds.Close();
        } else {
          auto f = hdf5lite::File::Open(comm, fs, "chk", false, info).value();
          const auto blocks =
              static_cast<std::uint64_t>(cfg.blocks_per_proc);
          const std::uint64_t b0 =
              blocks * static_cast<std::uint64_t>(comm.rank());
          const std::uint64_t start[] = {b0, 0, 0, 0};
          const std::uint64_t count[] = {
              blocks, static_cast<std::uint64_t>(cfg.nzb),
              static_cast<std::uint64_t>(cfg.nyb),
              static_cast<std::uint64_t>(cfg.nxb)};
          const std::uint64_t mdims[] = {blocks, cfg.guarded(cfg.nzb),
                                         cfg.guarded(cfg.nyb),
                                         cfg.guarded(cfg.nxb)};
          const std::uint64_t mstart[] = {
              0, static_cast<std::uint64_t>(cfg.nguard),
              static_cast<std::uint64_t>(cfg.nguard),
              static_cast<std::uint64_t>(cfg.nguard)};
          std::vector<double> guarded(pnc::ShapeProduct(mdims));
          char name[16];
          for (int v = 0; v < cfg.nvar; ++v) {
            std::snprintf(name, sizeof(name), "var%02d", v + 1);
            auto ds = f.OpenDataset(name).value();
            (void)ds.Read(start, count, guarded.data(), mdims, mstart);
            (void)ds.Close();
          }
          (void)f.Close();
        }
        comm.SyncClocksToMax();
        const double t2 = comm.clock().now();
        if (comm.rank() == 0) {
          out.write_bw = MBps(data_bytes, t1 - t0);
          out.read_bw = MBps(data_bytes, t2 - t1);
        }
      },
      bench::Sp2Cost());
  return out;
}

int Run(const bench::Args& args, bench::Recorder& rec) {
  FlashConfig cfg;
  const int block = std::atoi(args.Get("block", "8").c_str());
  cfg.nxb = cfg.nyb = cfg.nzb = block;
  simmpi::Info info;
  bench::ApplyHintOverrides(args, info);

  std::printf("Future work (paper section 6): checkpoint read-back, PnetCDF "
              "vs HDF5(lite)\n");
  std::printf("FLASH checkpoint restart, %dx%dx%d blocks, Frost-like "
              "platform\n\n", block, block, block);
  std::printf("%-8s | %11s %11s %7s | %11s %11s %7s\n", "nprocs",
              "pnc wr", "h5l wr", "ratio", "pnc rd", "h5l rd", "ratio");
  for (int np : bench::ProcsList(args, {4, 8, 16, 32})) {
    const auto config = [&](const char* lib) {
      return bench::JsonObj()
          .Int("block", static_cast<std::uint64_t>(block))
          .Int("nprocs", static_cast<std::uint64_t>(np))
          .Str("lib", lib);
    };
    const auto metrics = [](const Rates& r) {
      return bench::JsonObj()
          .Num("write_mbps", r.write_bw)
          .Num("read_mbps", r.read_bw);
    };
    rec.BeginConfig();
    const Rates p = RunOne(cfg, np, true, info);
    rec.EndConfig(config("pnetcdf"), metrics(p));
    rec.BeginConfig();
    const Rates h = RunOne(cfg, np, false, info);
    rec.EndConfig(config("hdf5lite"), metrics(h));
    std::printf("%-8d | %11.1f %11.1f %6.2fx | %11.1f %11.1f %6.2fx\n", np,
                p.write_bw, h.write_bw,
                h.write_bw > 0 ? p.write_bw / h.write_bw : 0.0, p.read_bw,
                h.read_bw, h.read_bw > 0 ? p.read_bw / h.read_bw : 0.0);
    std::fflush(stdout);
  }
  std::printf("\nIf the read ratio sits below the write ratio, the paper's "
              "conjecture holds:\nwithout write-time metadata "
              "synchronization the gap narrows (per-object\ncollective opens "
              "and hyperslab packing still favor PnetCDF).\n");
  return 0;
}

const bench::BenchDef kBench{
    "future_readback",
    "checkpoint read-back bandwidth, PnetCDF vs hdf5lite (paper section 6)",
    {"block", "procs"},
    Run};

}  // namespace

BENCH_REGISTER(kBench)
