// Ablation: collective vs independent data mode (paper §4.1: "Using
// collective operations provides the underlying PnetCDF implementation an
// opportunity to further optimize access ... proven to provide dramatic
// performance improvement in multidimensional dataset access").
//
// The same Y-partitioned (interleaved) write is issued once through
// put_vara_all (collective) and once through begin_indep_data/put_vara
// (independent), per process count.
#include <cstdio>
#include <vector>

#include "bench/bench_common.hpp"
#include "bench/platforms.hpp"
#include "bench/registry.hpp"
#include "pnetcdf/dataset.hpp"
#include "simmpi/runtime.hpp"

namespace {

double RunOne(int nprocs, bool collective, const simmpi::Info& info) {
  pfs::Config pcfg = bench::SdscBlueHorizon();
  pcfg.discard_data = true;
  pfs::FileSystem fs(pcfg);
  const std::uint64_t kZ = 128, kY = 128, kX = 64;
  double bw = 0.0;

  simmpi::Run(
      nprocs,
      [&](simmpi::Comm& comm) {
        auto ds = pnetcdf::Dataset::Create(comm, fs, "a.nc", info).value();
        const int zd = ds.DefDim("z", kZ).value();
        const int yd = ds.DefDim("y", kY).value();
        const int xd = ds.DefDim("x", kX).value();
        const int v =
            ds.DefVar("u", ncformat::NcType::kDouble, {zd, yd, xd}).value();
        (void)ds.EndDef();

        const std::uint64_t yper = kY / static_cast<std::uint64_t>(nprocs);
        const std::uint64_t start[] = {
            0, yper * static_cast<std::uint64_t>(comm.rank()), 0};
        const std::uint64_t count[] = {kZ, yper, kX};
        std::vector<double> mine(kZ * yper * kX, 3.5);

        comm.SyncClocksToMax();
        const double t0 = comm.clock().now();
        if (collective) {
          (void)ds.PutVaraAll<double>(v, start, count, mine);
        } else {
          (void)ds.BeginIndepData();
          (void)ds.PutVara<double>(v, start, count, mine);
          (void)ds.EndIndepData();
        }
        comm.SyncClocksToMax();
        if (comm.rank() == 0)
          bw = bench::MBps(kZ * kY * kX * 8, comm.clock().now() - t0);
        (void)ds.Close();
      },
      bench::Sp2Cost());
  return bw;
}

int Run(const bench::Args& args, bench::Recorder& rec) {
  const std::string mode = args.Get("mode", "both");
  simmpi::Info info;
  bench::ApplyHintOverrides(args, info);
  std::printf("Ablation: collective (_all) vs independent data mode\n");
  std::printf("Y-partitioned 8 MB write of u(128,128,64) doubles, 12-server "
              "platform\n\n");
  std::printf("%-8s %14s %14s %9s\n", "nprocs", "collective", "independent",
              "speedup");
  for (int np : bench::ProcsList(args, {2, 4, 8, 16})) {
    const auto config = [np](const char* m) {
      return bench::JsonObj()
          .Int("nprocs", static_cast<std::uint64_t>(np))
          .Str("mode", m);
    };
    double c = 0.0, i = 0.0;
    if (mode == "collective" || mode == "both") {
      rec.BeginConfig();
      c = RunOne(np, true, info);
      rec.EndConfig(config("collective"), bench::JsonObj().Num("mbps", c));
    }
    if (mode == "independent" || mode == "both") {
      rec.BeginConfig();
      i = RunOne(np, false, info);
      rec.EndConfig(config("independent"), bench::JsonObj().Num("mbps", i));
    }
    std::printf("%-8d %14.1f %14.1f %8.2fx\n", np, c, i, i > 0 ? c / i : 0.0);
  }
  return 0;
}

const bench::BenchDef kBench{
    "ablation_collective",
    "collective (_all) vs independent data mode on an interleaved write",
    {"mode", "procs"},
    Run};

}  // namespace

BENCH_REGISTER(kBench)
