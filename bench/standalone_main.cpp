// Shared main() for the per-bench executables: each standalone binary links
// exactly one bench_*.cpp, whose BENCH_REGISTER hook puts its BenchDef in
// the registry; this driver validates flags, builds the Recorder, and runs
// it. Suites across many benches are ncbench's job (src/tools/).
#include <cstdio>

#include "bench/registry.hpp"

int main(int argc, char** argv) {
  const auto& benches = bench::AllBenches();
  if (benches.empty()) {
    std::fprintf(stderr, "no bench registered in this binary\n");
    return 2;
  }
  const bench::BenchDef& def = *benches.front();
  const bench::Args args(argc, argv);
  bench::Recorder rec(args, def.name);
  return bench::RunBench(def, args, rec);
}
